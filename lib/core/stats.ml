open Natix_store

type doc_stats = {
  records : int;
  facade_nodes : int;
  scaffold_nodes : int;
  proxy_count : int;
  record_bytes : int;
  record_tree_depth : int;
  max_record_bytes : int;
  avg_fill_factor : float;
  pages : int;
}

let document store name =
  match Tree_store.document_rid store name with
  | None -> invalid_arg (Printf.sprintf "Stats.document: no document %S" name)
  | Some rid ->
    let records = ref 0 in
    let facade = ref 0 in
    let scaffold = ref 0 in
    let proxies = ref 0 in
    let bytes = ref 0 in
    let depth = ref 0 in
    let max_bytes = ref 0 in
    let rm = Tree_store.record_manager store in
    let pages = Hashtbl.create 64 in
    Tree_store.iter_records store rid (fun rid root d ->
        incr records;
        depth := max !depth (d + 1);
        let size = Phys_node.record_size root in
        bytes := !bytes + size;
        max_bytes := max !max_bytes size;
        Hashtbl.replace pages (Record_manager.home_page rm rid) ();
        let rec count (n : Phys_node.t) =
          match n.Phys_node.kind with
          | Phys_node.Frag_aggregate _ ->
            (* One logical text node; its chunks are scaffolding. *)
            incr facade;
            scaffold := !scaffold + Phys_node.count n - 1
          | Phys_node.Aggregate _ | Phys_node.Literal _ ->
            if Phys_node.is_facade n then incr facade else incr scaffold;
            List.iter count (Phys_node.children n)
          | Phys_node.Proxy _ ->
            incr scaffold;
            incr proxies
        in
        count root);
    (* Fill averaged over the distinct pages the document's records live
       on, sampled from the free-space inventory (no I/O charged). *)
    let seg = Record_manager.segment rm in
    let fill_sum = Hashtbl.fold (fun p () a -> a +. Segment.fill_factor seg p) pages 0. in
    let avg_fill_factor =
      let n = Hashtbl.length pages in
      if n = 0 then 0. else fill_sum /. float_of_int n
    in
    {
      records = !records;
      facade_nodes = !facade;
      scaffold_nodes = !scaffold;
      proxy_count = !proxies;
      record_bytes = !bytes;
      record_tree_depth = !depth;
      max_record_bytes = !max_bytes;
      avg_fill_factor;
      pages = Hashtbl.length pages;
    }

let disk_bytes store =
  Natix_store.Disk.size_bytes (Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store))

(* Per-document page counts in the catalog, for the query planner: a
   skewed store (one huge plus many tiny documents) makes the store-wide
   average a wildly wrong navigation-cost estimate.  Maintained by the
   document manager at load/insert/delete time, when the document's
   records are warm in the caches anyway. *)

let pages_key doc = "stats:pages:" ^ doc

let record_page_hint store doc =
  match Tree_store.document_rid store doc with
  | None -> ()
  | Some _ -> Tree_store.meta_put store (pages_key doc) (string_of_int (document store doc).pages)

let drop_page_hint store doc = Tree_store.meta_remove store (pages_key doc)

let page_hint store doc = Option.bind (Tree_store.meta_find store (pages_key doc)) int_of_string_opt

let pp_doc ppf s =
  Format.fprintf ppf
    "records=%d facade=%d scaffold=%d (proxies=%d) bytes=%d depth=%d max_record=%d fill=%.2f \
     pages=%d"
    s.records s.facade_nodes s.scaffold_nodes s.proxy_count s.record_bytes s.record_tree_depth
    s.max_record_bytes s.avg_fill_factor s.pages
