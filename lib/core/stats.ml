type doc_stats = {
  records : int;
  facade_nodes : int;
  scaffold_nodes : int;
  record_bytes : int;
  record_tree_depth : int;
  max_record_bytes : int;
}

let document store name =
  match Tree_store.document_rid store name with
  | None -> invalid_arg (Printf.sprintf "Stats.document: no document %S" name)
  | Some rid ->
    let records = ref 0 in
    let facade = ref 0 in
    let scaffold = ref 0 in
    let bytes = ref 0 in
    let depth = ref 0 in
    let max_bytes = ref 0 in
    Tree_store.iter_records store rid (fun _rid root d ->
        incr records;
        depth := max !depth (d + 1);
        let size = Phys_node.record_size root in
        bytes := !bytes + size;
        max_bytes := max !max_bytes size;
        let rec count (n : Phys_node.t) =
          match n.Phys_node.kind with
          | Phys_node.Frag_aggregate _ ->
            (* One logical text node; its chunks are scaffolding. *)
            incr facade;
            scaffold := !scaffold + Phys_node.count n - 1
          | Phys_node.Aggregate _ | Phys_node.Literal _ ->
            if Phys_node.is_facade n then incr facade else incr scaffold;
            List.iter count (Phys_node.children n)
          | Phys_node.Proxy _ -> incr scaffold
        in
        count root);
    {
      records = !records;
      facade_nodes = !facade;
      scaffold_nodes = !scaffold;
      record_bytes = !bytes;
      record_tree_depth = !depth;
      max_record_bytes = !max_bytes;
    }

let disk_bytes store =
  Natix_store.Disk.size_bytes (Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store))

let pp_doc ppf s =
  Format.fprintf ppf
    "records=%d facade=%d scaffold=%d bytes=%d depth=%d max_record=%d" s.records s.facade_nodes
    s.scaffold_nodes s.record_bytes s.record_tree_depth s.max_record_bytes
