open Natix_store

type issue = { where : string; what : string }

type report = {
  pages : int;
  documents : int;
  indexed : bool;
  issues : issue list;
}

let ok r = r.issues = []

let describe = function
  | Failure m -> m
  | Btree.Corrupt m -> Printf.sprintf "btree corrupt: %s" m
  | Disk.Bad_page { page; reason } -> Printf.sprintf "bad page %d: %s" page reason
  | e -> Printexc.to_string e

(* Layer 1: every page trailer (checksum, page-id stamp). *)
let sweep_trailers disk add =
  for page = 0 to Disk.page_count disk - 1 do
    match Disk.verify disk page with
    | Ok () -> ()
    | Error reason -> add (Printf.sprintf "page %d" page) reason
  done

let run_disk disk =
  let issues = ref [] in
  let add where what = issues := { where; what } :: !issues in
  sweep_trailers disk add;
  { pages = Disk.page_count disk; documents = 0; indexed = false; issues = List.rev !issues }

let run store =
  let pool = Tree_store.buffer_pool store in
  let disk = Buffer_pool.disk pool in
  let seg = Record_manager.segment (Tree_store.record_manager store) in
  let issues = ref [] in
  let add where what = issues := { where; what } :: !issues in
  let guard where f = try f () with e -> add where (describe e) in
  let pages = Disk.page_count disk in
  sweep_trailers disk add;
  (* Layer 2: the slotted layout of every page.  An all-zero payload is a
     quiesced allocation — a crashed transaction's arena refill wiped back
     by recovery's undo — not a layout: it carries no records, the
     allocator never selects it, and reformatting reclaims it.  Skip it
     rather than flag a missing slotted header. *)
  let all_zero data =
    let n = Bytes.length data in
    let rec go i = i >= n || (Bytes.get data i = '\000' && go (i + 1)) in
    go 0
  in
  for page = 0 to pages - 1 do
    guard
      (Printf.sprintf "page %d" page)
      (fun () ->
        Segment.with_page seg page (fun data -> if not (all_zero data) then Slotted_page.check data))
  done;
  (* Layer 3: every document's physical tree (sizes, parent RIDs, proxy
     chains, scaffolding invariants). *)
  let documents = Tree_store.list_documents store in
  List.iter (fun doc -> guard ("document " ^ doc) (fun () -> Tree_store.check_document store doc)) documents;
  (* Layer 4: the element index's B-tree invariants and its agreement with
     the documents. *)
  let indexed =
    match (try Element_index.open_index store ~name:"elements" with e -> add "index" (describe e); None) with
    | None -> false
    | Some idx ->
      guard "index" (fun () -> Element_index.check idx);
      true
  in
  (* Layer 5: page ownership tags against the catalog's arena registry.
     Every private arena must be claimed by exactly one catalogued
     document, and every record of a document must live on a page tagged
     with that document's arena (the shared arena 0 when it has none).
     An unclaimed tag means a crashed writer's pages survived recovery
     without an owning document — orphaned storage. *)
  let claims = Hashtbl.create 8 in
  List.iter
    (fun doc ->
      match Tree_store.document_arena store doc with
      | None -> ()
      | Some a -> (
        (match Hashtbl.find_opt claims a with
        | Some other ->
          add (Printf.sprintf "arena %d" a) (Printf.sprintf "claimed by both %S and %S" other doc)
        | None -> Hashtbl.replace claims a doc);
        if not (List.mem a (Segment.arena_ids seg)) then
          add ("document " ^ doc) (Printf.sprintf "claims arena %d, which owns no pages" a)))
    documents;
  List.iter
    (fun a ->
      if a <> 0 && not (Hashtbl.mem claims a) then
        add
          (Printf.sprintf "arena %d" a)
          (Printf.sprintf "%d orphaned page(s) tagged with an arena no document claims"
             (List.length (Segment.arena_pages seg a))))
    (Segment.arena_ids seg);
  List.iter
    (fun doc ->
      let want = match Tree_store.document_arena store doc with Some a -> a | None -> 0 in
      match Tree_store.document_rid store doc with
      | None -> ()
      | Some root ->
        guard ("document " ^ doc) (fun () ->
            let rm = Tree_store.record_manager store in
            Tree_store.iter_records store root (fun rid _ _ ->
                let page = Record_manager.home_page rm rid in
                let got = Segment.owner_of seg page in
                if got <> want then
                  add
                    (Printf.sprintf "document %s record %s" doc (Natix_util.Rid.to_string rid))
                    (Printf.sprintf "lives on page %d tagged arena %d, expected arena %d" page got
                       want))))
    documents;
  { pages; documents = List.length documents; indexed; issues = List.rev !issues }

let pp ppf r =
  Format.fprintf ppf "@[<v>checked %d pages, %d document(s)%s@," r.pages r.documents
    (if r.indexed then ", element index" else "");
  (match r.issues with
  | [] -> Format.fprintf ppf "no errors"
  | issues ->
    Format.fprintf ppf "%d error(s):" (List.length issues);
    List.iter (fun i -> Format.fprintf ppf "@,  %s: %s" i.where i.what) issues);
  Format.fprintf ppf "@]"
