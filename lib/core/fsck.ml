open Natix_store

type issue = { where : string; what : string }

type report = {
  pages : int;
  documents : int;
  indexed : bool;
  issues : issue list;
}

let ok r = r.issues = []

let describe = function
  | Failure m -> m
  | Btree.Corrupt m -> Printf.sprintf "btree corrupt: %s" m
  | Disk.Bad_page { page; reason } -> Printf.sprintf "bad page %d: %s" page reason
  | e -> Printexc.to_string e

(* Layer 1: every page trailer (checksum, page-id stamp). *)
let sweep_trailers disk add =
  for page = 0 to Disk.page_count disk - 1 do
    match Disk.verify disk page with
    | Ok () -> ()
    | Error reason -> add (Printf.sprintf "page %d" page) reason
  done

let run_disk disk =
  let issues = ref [] in
  let add where what = issues := { where; what } :: !issues in
  sweep_trailers disk add;
  { pages = Disk.page_count disk; documents = 0; indexed = false; issues = List.rev !issues }

let run store =
  let pool = Tree_store.buffer_pool store in
  let disk = Buffer_pool.disk pool in
  let seg = Record_manager.segment (Tree_store.record_manager store) in
  let issues = ref [] in
  let add where what = issues := { where; what } :: !issues in
  let guard where f = try f () with e -> add where (describe e) in
  let pages = Disk.page_count disk in
  sweep_trailers disk add;
  (* Layer 2: the slotted layout of every page. *)
  for page = 0 to pages - 1 do
    guard
      (Printf.sprintf "page %d" page)
      (fun () -> Segment.with_page seg page Slotted_page.check)
  done;
  (* Layer 3: every document's physical tree (sizes, parent RIDs, proxy
     chains, scaffolding invariants). *)
  let documents = Tree_store.list_documents store in
  List.iter (fun doc -> guard ("document " ^ doc) (fun () -> Tree_store.check_document store doc)) documents;
  (* Layer 4: the element index's B-tree invariants and its agreement with
     the documents. *)
  let indexed =
    match (try Element_index.open_index store ~name:"elements" with e -> add "index" (describe e); None) with
    | None -> false
    | Some idx ->
      guard "index" (fun () -> Element_index.check idx);
      true
  in
  { pages; documents = List.length documents; indexed; issues = List.rev !issues }

let pp ppf r =
  Format.fprintf ppf "@[<v>checked %d pages, %d document(s)%s@," r.pages r.documents
    (if r.indexed then ", element index" else "");
  (match r.issues with
  | [] -> Format.fprintf ppf "no errors"
  | issues ->
    Format.fprintf ppf "%d error(s):" (List.length issues);
    List.iter (fun i -> Format.fprintf ppf "@,  %s: %s" i.where i.what) issues);
  Format.fprintf ppf "@]"
