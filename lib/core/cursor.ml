type t = {
  store : Tree_store.t;
  node : Phys_node.t;
  (* Logical siblings to the right, when known (descending provides it;
     [of_node] does not). *)
  rest : Phys_node.t Seq.t;
  up : t option;
}

let of_node store node = { store; node; rest = Seq.empty; up = None }

let of_document store name =
  Option.map (of_node store) (Tree_store.open_document store name)

let store t = t.store
let node t = t.node
let is_element t = Tree_store.is_element t.node
let is_text t = Tree_store.is_literal t.node
let name t = Tree_store.label_name t.store t.node.Phys_node.label
let text t = Tree_store.text_of t.store t.node

let children t : t Seq.t =
  let rec wrap up seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (n, rest) -> Seq.Cons ({ store = t.store; node = n; rest; up = Some up }, wrap up rest)
  in
  wrap t (Tree_store.logical_children t.store t.node)

let first_child t =
  match children t () with
  | Seq.Nil -> None
  | Seq.Cons (c, _) -> Some c

let next_sibling t =
  match t.rest () with
  | Seq.Cons (n, rest) -> Some { store = t.store; node = n; rest; up = t.up }
  | Seq.Nil -> (
    match t.up with
    | Some _ -> None
    | None -> (
      (* No sibling context: recompute from the logical parent. *)
      match Tree_store.logical_parent t.store t.node with
      | None -> None
      | Some p ->
        let rec find seq =
          match seq () with
          | Seq.Nil -> None
          | Seq.Cons (n, rest) ->
            if n == t.node then
              match rest () with
              | Seq.Nil -> None
              | Seq.Cons (n', rest') ->
                Some { store = t.store; node = n'; rest = rest'; up = None }
            else find rest
        in
        find (Tree_store.logical_children t.store p)))

let parent t =
  match t.up with
  | Some _ as up -> up
  | None -> Option.map (of_node t.store) (Tree_store.logical_parent t.store t.node)

let is_attribute t =
  (not (is_element t)) && String.length (name t) > 0 && (name t).[0] = '@'

let children_named t elem_name =
  Seq.filter (fun c -> is_element c && String.equal (name c) elem_name) (children t)

let attribute t attr_name =
  let key = "@" ^ attr_name in
  Seq.find_map
    (fun c -> if (not (is_element c)) && String.equal (name c) key then Some (text c) else None)
    (children t)

let rec descendants_or_self t () =
  Seq.Cons (t, Seq.concat_map descendants_or_self (children t))

let text_content t =
  let buf = Buffer.create 128 in
  Seq.iter
    (fun c -> if is_text c && not (is_attribute c) then Buffer.add_string buf (text c))
    (descendants_or_self t);
  Buffer.contents buf
