open Natix_util
open Natix_store

exception Unsplittable of string

type record_event = Changed | Dropped

(* One in-flight transaction's catalog footprint.  [journal] records the
   {e previous} binding of every catalog entry the transaction replaced
   or removed (newest first), so a concurrent committer can persist a
   catalog image with this transaction's in-flight changes reverted: a
   commit must never make a possible loser's documents durable.  The
   per-document latch keeps journals disjoint — a catalog key (a
   document binding, its DTD, its arena id, its stats hint) is only ever
   touched by the one transaction holding that document's latch. *)
type journal_op =
  | Doc_put of string * Rid.t option  (* name, previous binding *)
  | Meta_put of string * string option  (* key, previous binding *)

type mutation_ctx = { doc : string; mutable journal : journal_op list }

(* Transaction machinery, shared by value across {!reader} copies (the
   field holds the same object).  Transactions on documents with private
   allocation arenas run their mutation phases {e concurrently}: their
   page sets are disjoint by construction (each allocates only from its
   own arena), which is what keeps page-level redo/undo sound with
   several uncommitted writers in the log.  [struct_lock] shrinks to the
   shared-state sections — the begin step (transaction-mode transition
   and Begin record) and the commit step (catalog save on shared pages,
   update/commit records) — plus the whole mutation phase of writers on
   shared-arena documents, whose pages are not disjoint from anyone's.
   Per-document latches (held across the whole transaction, commit wait
   included) serialise writers on the same document. *)
type txn_state = {
  struct_lock : Mutex.t;  (* rank {!Lock_rank.structure} *)
  latches_lock : Mutex.t;  (* guards [doc_latches]; taken holding nothing *)
  doc_latches : (string, Mutex.t) Hashtbl.t;  (* rank {!Lock_rank.doc} *)
  counter : int Atomic.t;  (* next transaction id; 0 is the implicit batch *)
  active : int Atomic.t;  (* transactions between begin and commit ack *)
  poisoned : string option Atomic.t;
  mutators_lock : Mutex.t;  (* guards the two tables below; leaf *)
  mutators : (int, mutation_ctx) Hashtbl.t;  (* domain id -> its transaction *)
  doc_active : (string, int) Hashtbl.t;  (* document -> in-flight txns on it *)
}

type t = {
  rm : Record_manager.t;
  pool : Buffer_pool.t;
  config : Config.t;
  gc : Group_commit.t option;
  txns : txn_state;
  catalog : Catalog.t;
  catalog_lock : Mutex.t;
      (* Guards the catalog's [docs]/[meta] hashtables (concurrent
         transactions update disjoint keys, but OCaml hashtables need
         external synchronisation even then).  Leaf: held only for table
         operations and journal pushes, never while taking another
         lock. *)
  cache : Phys_node.box Rid.Tbl.t;
  cache_lock : Mutex.t;  (* guards [cache] table operations; leaf *)
  splits : int Atomic.t;
  merges : int Atomic.t;
  mutable listener : (Rid.t -> record_event -> unit) option;
  change_epoch : int Atomic.t;
      (* Count of record-level changes over the store's lifetime, persisted
         in the catalog at [sync].  Secondary structures stamp the epoch
         they are consistent with, so staleness (changes made while their
         listener was not attached) is detectable on reopen. *)
  obs : Natix_obs.Obs.t option;
  mutable last_decision : Split_matrix.behaviour;
      (* Matrix decision of the insertion that is currently running; a
         record split triggered by that insertion reports it.  Plain
         mutable on purpose: concurrent writers race on it, but it only
         flavours the decision label of split events, and each domain
         reads back a value some insertion just wrote. *)
}

type payload =
  | Elem of Label.t
  | Text of string
  | Lit of Label.t * Phys_node.literal

type insert_point =
  | First_under of Phys_node.t
  | After of Phys_node.t

let config t = t.config
let names t = t.catalog.Catalog.names
let catalog t = t.catalog
let record_manager t = t.rm
let buffer_pool t = t.pool
let io_stats t = Disk.stats (Buffer_pool.disk t.pool)
let max_record_size t = Config.max_record_size t.config
let split_count t = Atomic.get t.splits
let merge_count t = Atomic.get t.merges
let obs t = t.obs

let event_decision : Split_matrix.behaviour -> Natix_obs.Event.decision = function
  | Split_matrix.Cluster -> Natix_obs.Event.Cluster
  | Split_matrix.Standalone -> Natix_obs.Event.Standalone
  | Split_matrix.Other -> Natix_obs.Event.Other
let label t name = Name_pool.intern t.catalog.Catalog.names name
let set_change_listener t listener = t.listener <- listener

let change_epoch t = Atomic.get t.change_epoch
let epoch_meta_key = "store:epoch"

(* Leaf locks: held only around a table operation, never while acquiring
   anything else, so they stay outside the rank order. *)
let with_leaf_lock m f =
  Lock_rank.acquire Lock_rank.unordered;
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock m;
      Lock_rank.release Lock_rank.unordered)
    f

let with_cache t f = with_leaf_lock t.cache_lock f
let with_catalog_lock t f = with_leaf_lock t.catalog_lock f
let with_mutators t f = with_leaf_lock t.txns.mutators_lock f
let self_id () = (Domain.self () :> int)

let current_mutator t = with_mutators t (fun () -> Hashtbl.find_opt t.txns.mutators (self_id ()))
let in_transaction t = current_mutator t <> None

(* Journal-aware catalog access.  Inside a transaction the previous
   binding is pushed onto the calling transaction's journal before the
   table changes; outside, the tables are updated directly (the implicit
   batch persists them at the next sync). *)
let journal t op =
  with_mutators t (fun () ->
      match Hashtbl.find_opt t.txns.mutators (self_id ()) with
      | Some m -> m.journal <- op :: m.journal
      | None -> ())

let meta_find t key = with_catalog_lock t (fun () -> Hashtbl.find_opt t.catalog.Catalog.meta key)

let meta_put t key value =
  with_catalog_lock t (fun () ->
      journal t (Meta_put (key, Hashtbl.find_opt t.catalog.Catalog.meta key));
      Hashtbl.replace t.catalog.Catalog.meta key value)

let meta_remove t key =
  with_catalog_lock t (fun () ->
      match Hashtbl.find_opt t.catalog.Catalog.meta key with
      | None -> ()
      | Some _ as prev ->
        journal t (Meta_put (key, prev));
        Hashtbl.remove t.catalog.Catalog.meta key)

let doc_put t name rid =
  with_catalog_lock t (fun () ->
      journal t (Doc_put (name, Hashtbl.find_opt t.catalog.Catalog.docs name));
      Hashtbl.replace t.catalog.Catalog.docs name rid)

let doc_remove t name =
  with_catalog_lock t (fun () ->
      journal t (Doc_put (name, Hashtbl.find_opt t.catalog.Catalog.docs name));
      Hashtbl.remove t.catalog.Catalog.docs name)

let arena_meta_key doc = "arena:" ^ doc
let document_arena t doc = Option.bind (meta_find t (arena_meta_key doc)) int_of_string_opt

let notify t rid event =
  Atomic.incr t.change_epoch;
  match t.listener with
  | Some f -> f rid event
  | None -> ()
let label_name t l = Name_pool.name t.catalog.Catalog.names l

let open_store ?(config = Config.default ()) disk =
  Config.validate config;
  if Disk.page_size disk <> config.page_size then
    invalid_arg "Tree_store.open_store: disk page size differs from the configuration";
  (* Bind the observability handle to the disk before any layer above
     caches it; the disk also drives the handle's simulated clock. *)
  (match Disk.obs disk, config.obs with
  | None, (Some _ as o) -> Disk.set_obs disk o
  | (Some _ | None), _ -> ());
  (* Crash recovery must run before the segment's reopen scan below reads
     any page: a torn page would fail its checksum there. *)
  let recovery =
    match Disk.path disk with
    | Some _ -> Recovery.run ?obs:(Disk.obs disk) disk
    | None -> Recovery.no_op disk
  in
  let wal =
    match Disk.path disk with
    | Some p when config.wal ->
      Some
        (Wal.create ?obs:(Disk.obs disk) ?faults:(Disk.faults disk)
           ~first_lsn:recovery.Recovery.next_lsn ~page_size:(Disk.page_size disk)
           ~base:(Disk.page_count disk) (Recovery.wal_path p))
    | Some _ | None -> None
  in
  let gc =
    Option.map
      (fun w ->
        Group_commit.create ~commit_delay:config.commit_delay
          ~charge:(fun ms -> Disk.charge_sync_ms disk ms)
          w)
      wal
  in
  let pool =
    Buffer_pool.create ~disk ~bytes:config.buffer_bytes ?wal ~read_retries:config.read_retries
      ~read_ahead:config.read_ahead ~scan_resistant:config.scan_resistant ()
  in
  let seg = Segment.create ~batch:config.arena_batch pool in
  let rm = Record_manager.create seg in
  let catalog = Catalog.load rm in
  let change_epoch =
    match Hashtbl.find_opt catalog.Catalog.meta epoch_meta_key with
    | Some s -> ( match int_of_string_opt s with Some e -> e | None -> 0)
    | None -> 0
  in
  {
    rm;
    pool;
    config;
    gc;
    txns =
      {
        struct_lock = Mutex.create ();
        latches_lock = Mutex.create ();
        doc_latches = Hashtbl.create 16;
        counter = Atomic.make 1;
        active = Atomic.make 0;
        poisoned = Atomic.make None;
        mutators_lock = Mutex.create ();
        mutators = Hashtbl.create 8;
        doc_active = Hashtbl.create 8;
      };
    catalog;
    catalog_lock = Mutex.create ();
    cache = Rid.Tbl.create 1024;
    cache_lock = Mutex.create ();
    splits = Atomic.make 0;
    merges = Atomic.make 0;
    listener = None;
    change_epoch = Atomic.make change_epoch;
    obs = Disk.obs disk;
    last_decision = Split_matrix.Other;
  }

let in_memory ?(config = Config.default ()) ?model () =
  open_store ~config (Disk.in_memory ?model ~page_size:config.page_size ())

(* A reader view shares the physical layers (record manager, buffer pool,
   catalog, name pool) but owns a fresh decoded-record cache: the cache is
   the store's main piece of shared mutable state ([fetch] installs boxes
   and rewires [root.box] back-pointers), so worker domains each get their
   own.  Stats are unaffected — [fetch] charges the page access even on a
   decoded-cache hit — and the observability handle is detached because
   its context/span state is single-domain. *)
let reader t =
  {
    t with
    cache = Rid.Tbl.create 1024;
    cache_lock = Mutex.create ();
    listener = None;
    obs = None;
    splits = Atomic.make 0;
    merges = Atomic.make 0;
    last_decision = Split_matrix.Other;
  }

(* Counter resets racing with active worker accumulators would make the
   merged totals unreconcilable; surface that as a typed storage error
   (the CLI maps it to an exit code like any other). *)
let reset_io_stats t =
  let disk = Buffer_pool.disk t.pool in
  if Disk.in_parallel_region disk then
    raise (Error.Error (Error.Storage "io-stats reset rejected: parallel region active"));
  Io_stats.reset (Disk.stats disk);
  Buffer_pool.reset_stats t.pool

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let storage_error fmt = Printf.ksprintf (fun m -> raise (Error.Error (Error.Storage m))) fmt

let poisoned t = Atomic.get t.txns.poisoned
let active_txns t = Atomic.get t.txns.active
let group_commit t = t.gc
let poison t msg = Atomic.compare_and_set t.txns.poisoned None (Some msg) |> ignore

let check_usable t =
  match Atomic.get t.txns.poisoned with
  | Some msg -> storage_error "store poisoned by a failed transaction (%s); reopen to recover" msg
  | None -> ()

let with_struct_lock t f =
  Lock_rank.acquire Lock_rank.structure;
  Mutex.lock t.txns.struct_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.txns.struct_lock;
      Lock_rank.release Lock_rank.structure)
    f

(* Mutations not scoped by {!with_txn} belong to the implicit checkpoint
   batch; mixing them with transactional writers would attribute their
   pages to whichever regime writes first, so they are rejected while any
   transaction is in flight.  The transaction's own mutation phase passes:
   it runs on the domain registered as the mutator.

   Sequential mixing needs one more step: after the last transaction
   commits, the pool stays in transaction mode until a checkpoint, and in
   that mode write-backs log nothing for the implicit batch (an implicit
   pre-image could shadow a committed transaction's records).  Unscoped
   mutation entering that window would therefore reach disk with no WAL
   coverage at all, so the store checkpoints out of transaction mode
   first — under the structure lock, where no transaction can have logged
   anything yet (Begin is logged only inside the mutation phase). *)
let guard_mutate t =
  check_usable t;
  let own_txn = in_transaction t in
  if (not own_txn) && Atomic.get t.txns.active > 0 then
    storage_error "unscoped mutation while %d transaction(s) are in flight"
      (Atomic.get t.txns.active);
  if (not own_txn) && Buffer_pool.txn_mode t.pool then
    with_struct_lock t (fun () ->
        if Atomic.get t.txns.active > 0 then
          storage_error "unscoped mutation while %d transaction(s) are in flight"
            (Atomic.get t.txns.active);
        if Buffer_pool.txn_mode t.pool then Buffer_pool.checkpoint t.pool)

let doc_latch t doc =
  Lock_rank.acquire Lock_rank.unordered;
  Mutex.lock t.txns.latches_lock;
  let m =
    match Hashtbl.find_opt t.txns.doc_latches doc with
    | Some m -> m
    | None ->
      let m = Mutex.create () in
      Hashtbl.replace t.txns.doc_latches doc m;
      m
  in
  Mutex.unlock t.txns.latches_lock;
  Lock_rank.release Lock_rank.unordered;
  m

(* Persist the catalog as the committing transaction sees it: a snapshot
   of the live tables with every {e other} in-flight transaction's
   changes reverted.  Each journal records previous bindings newest
   first, so replaying it front to back lands on the binding from before
   that transaction started; journals of different transactions touch
   disjoint keys (the document latch guarantees it), so the replay order
   across transactions is immaterial.  The name pool and type table are
   shared and append-only: entries interned by in-flight transactions
   may over-persist, which is harmless — nothing dangles, and the
   interning is idempotent.  Runs under the structure lock (catalog
   chain pages are shared). *)
let save_catalog_filtered t =
  let self = self_id () in
  let image =
    with_catalog_lock t (fun () ->
        let docs = Hashtbl.copy t.catalog.Catalog.docs in
        let meta = Hashtbl.copy t.catalog.Catalog.meta in
        Hashtbl.replace meta epoch_meta_key (string_of_int (Atomic.get t.change_epoch));
        with_mutators t (fun () ->
            Hashtbl.iter
              (fun dom (m : mutation_ctx) ->
                if dom <> self then
                  List.iter
                    (function
                      | Doc_put (name, None) -> Hashtbl.remove docs name
                      | Doc_put (name, Some rid) -> Hashtbl.replace docs name rid
                      | Meta_put (key, None) -> Hashtbl.remove meta key
                      | Meta_put (key, Some v) -> Hashtbl.replace meta key v)
                    m.journal)
              t.txns.mutators);
        { t.catalog with Catalog.docs; meta })
  in
  Catalog.save t.rm image

(* Run [f] as a transaction on document [doc].  The document latch spans
   the whole call (two transactions on one document serialise entirely).
   A document with a private allocation arena — any document created
   inside a transaction — runs the {e concurrent} protocol: the
   structure lock is held only around the begin step (transaction-mode
   transition, Begin record) and the commit step (catalog save on shared
   pages, update/commit records), and the mutation phase itself runs
   under nothing but the document latch, because every page it writes
   belongs to the document's own arena.  A pre-existing document in the
   shared arena keeps the legacy protocol — structure lock across the
   whole mutation phase — since its pages are not disjoint from other
   shared-arena writers'.  Either way the commit-fsync wait runs outside
   every lock but the latch, so group commit batches concurrent
   committers into one log force.  Any failure (an exception out of [f],
   a crashed or poisoned commit) leaves the in-memory state inconsistent
   with no way to roll it back in place, so it poisons the store: every
   later operation gets a typed error, and reopening runs recovery,
   which undoes the loser from the log. *)
let with_txn t ~doc f =
  check_usable t;
  let gc =
    match t.gc with
    | Some gc -> gc
    | None -> storage_error "transactions need a write-ahead log (file-backed store, wal=true)"
  in
  let latch = doc_latch t doc in
  Lock_rank.acquire Lock_rank.doc;
  Mutex.lock latch;
  (* Decided under the latch, so a transaction that creates [doc] (and
     gives it a private arena) cannot race the classification. *)
  let serialize =
    document_arena t doc = None
    && with_catalog_lock t (fun () -> Hashtbl.mem t.catalog.Catalog.docs doc)
  in
  Atomic.incr t.txns.active;
  with_mutators t (fun () ->
      Hashtbl.replace t.txns.mutators (self_id ()) { doc; journal = [] };
      Hashtbl.replace t.txns.doc_active doc
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.txns.doc_active doc)));
  let release_doc () =
    with_mutators t (fun () ->
        Hashtbl.remove t.txns.mutators (self_id ());
        match Hashtbl.find_opt t.txns.doc_active doc with
        | Some n when n > 1 -> Hashtbl.replace t.txns.doc_active doc (n - 1)
        | Some _ | None -> Hashtbl.remove t.txns.doc_active doc);
    Atomic.decr t.txns.active;
    Mutex.unlock latch;
    Lock_rank.release Lock_rank.doc
  in
  (* The first transaction seals whatever the implicit batch has done so
     far; from here until the next checkpoint, write-backs log
     transactional update records instead of batch pre-images. *)
  let begin_section () =
    check_usable t;
    if not (Buffer_pool.txn_mode t.pool) then Buffer_pool.checkpoint t.pool;
    let txn = Atomic.fetch_and_add t.txns.counter 1 in
    Buffer_pool.txn_begin t.pool ~txn
  in
  (* The catalog (documents, name pool, meta) must commit with the
     transaction that grew it: labels interned during [f] live only in
     memory until saved, and recovery redoes data pages against whatever
     catalog image the log carries. *)
  let commit_section () =
    check_usable t;
    save_catalog_filtered t;
    let lsn = Buffer_pool.txn_commit_prep t.pool in
    (* The commit record is logged: this transaction's catalog changes are
       now on the winning side of recovery.  Clear the journal while still
       inside the structure lock — the mutator stays registered until the
       group-commit fsync acknowledges, and a concurrent committer's
       filtered save in that window must include (not revert) what is
       already committed, or its higher-LSN catalog image would erase this
       document from the replayed store. *)
    with_mutators t (fun () ->
        match Hashtbl.find_opt t.txns.mutators (self_id ()) with
        | Some m -> m.journal <- []
        | None -> ());
    lsn
  in
  let mutation () =
    match
      if serialize then
        with_struct_lock t (fun () ->
            begin_section ();
            let result = f () in
            let lsn = commit_section () in
            (result, lsn))
      else begin
        with_struct_lock t begin_section;
        let result = f () in
        let lsn = with_struct_lock t commit_section in
        (result, lsn)
      end
    with
    | pair -> pair
    | exception e ->
      poison t (Printexc.to_string e);
      raise e
  in
  match mutation () with
  | exception e ->
    release_doc ();
    raise e
  | result, lsn -> (
    match Group_commit.commit gc ~lsn with
    | Ok () ->
      release_doc ();
      result
    | Error msg ->
      poison t msg;
      release_doc ();
      storage_error "commit failed: %s" msg
    | exception e ->
      poison t (Printexc.to_string e);
      release_doc ();
      raise e)

(* The active check and the checkpoint must be one atomic step with
   respect to {!with_txn}'s mutation phase: checked without the structure
   lock, a concurrent transaction could increment [active] and log its
   Begin/Update records between the check and [Wal.checkpoint]'s log
   truncation, destroying the undo/redo records it needs if it loses.
   Under the lock, a transaction that slipped past the check is parked at
   the structure lock with nothing logged yet, so rejecting here is
   always sound.  The unlocked check stays as the fast path: it rejects
   without touching the lock while a mutation phase is running — which
   also keeps a transaction's own [f] calling [sync] an error instead of
   a self-deadlock on the non-recursive lock. *)
let sync t =
  check_usable t;
  if Atomic.get t.txns.active > 0 then
    storage_error "checkpoint rejected: %d transaction(s) in flight" (Atomic.get t.txns.active);
  with_struct_lock t (fun () ->
      if Atomic.get t.txns.active > 0 then
        storage_error "checkpoint rejected: %d transaction(s) in flight"
          (Atomic.get t.txns.active);
      with_catalog_lock t (fun () ->
          Hashtbl.replace t.catalog.Catalog.meta epoch_meta_key
            (string_of_int (Atomic.get t.change_epoch)));
      Catalog.save t.rm t.catalog;
      Buffer_pool.checkpoint t.pool);
  (* The durability point also flushes buffered trace output, so a JSONL
     event stream (flight recorder, [natix trace --jsonl]) on disk is
     complete up to the last checkpoint even if the process dies. *)
  match t.obs with None -> () | Some obs -> Natix_obs.Obs.flush obs

let checkpoint = sync

let doc_active_count t doc =
  with_mutators t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.txns.doc_active doc))

(* Per-document durability: write the document's pages home without the
   store-wide quiesce {!sync} needs, so an idle document's checkpoint is
   never blocked (or rejected) because an unrelated writer is mid-
   transaction.  Validation is against {e per-document} transaction
   state — only a transaction on [doc] itself rejects the call.  Unlike
   {!sync} this does not truncate the WAL (that demands a store-wide
   quiet point) and does not persist the catalog (every transactional
   commit already does; unscoped work commits at the next [sync]); it is
   purely the flush that moves the document's data from the pool to its
   pages.  Safe against concurrent writers without any lock: their pages
   live in other arenas, so the flush list never intersects their
   working sets, and even a transaction racing onto [doc] after the
   check is only {e stolen} from — [Buffer_pool.flush_pages] logs the
   covering update records before any page goes home. *)
let sync_document t doc =
  check_usable t;
  let reject () =
    storage_error "checkpoint of %S rejected: a transaction on it is in flight" doc
  in
  if doc_active_count t doc > 0 then reject ();
  let seg = Record_manager.segment t.rm in
  let pages =
    match document_arena t doc with
    | Some arena -> Segment.arena_pages seg arena
    | None ->
      if with_catalog_lock t (fun () -> Hashtbl.mem t.catalog.Catalog.docs doc) then
        (* Shared-arena document: its pages are not separable from the
           rest of the shared arena, so flush all of it. *)
        Segment.arena_pages seg 0
      else storage_error "checkpoint of %S rejected: no such document" doc
  in
  if doc_active_count t doc > 0 then reject ();
  Buffer_pool.flush_pages t.pool pages

let checkpoint_document = sync_document

let close ?(commit = true) t =
  (* A poisoned store must not checkpoint: flushing and truncating the log
     would promote the failed transaction's partial writes to committed
     state.  Close without syncing; recovery rolls them back on reopen. *)
  (match Atomic.get t.txns.poisoned with
  | Some _ -> ()
  | None -> if commit then sync t);
  (match t.obs with None -> () | Some obs -> Natix_obs.Obs.flush obs);
  (match Buffer_pool.wal t.pool with Some w -> Wal.close w | None -> ());
  Disk.close (Buffer_pool.disk t.pool)

let clear_buffers t =
  with_cache t (fun () ->
      Rid.Tbl.iter
        (fun _ (box : Phys_node.box) ->
          match box.root.Phys_node.box with
          | Some b when b == box -> box.root.Phys_node.box <- None
          | Some _ | None -> ())
        t.cache;
      Rid.Tbl.reset t.cache);
  Buffer_pool.clear t.pool

(* ------------------------------------------------------------------ *)
(* Record access                                                       *)

let fetch t rid : Phys_node.box =
  match with_cache t (fun () -> Rid.Tbl.find_opt t.cache rid) with
  | Some box ->
    (* Charge the page access even on a decoded-cache hit, so the I/O
       pattern matches a system that re-reads the record image. *)
    Record_manager.with_record t.rm rid (fun _ ~off:_ ~len:_ -> ());
    box
  | None ->
    let body = Record_manager.read t.rm rid in
    let root, parent_rid = Node_codec.decode t.catalog.Catalog.types body in
    let box = { Phys_node.rid; root; parent_rid } in
    root.Phys_node.box <- Some box;
    with_cache t (fun () -> Rid.Tbl.replace t.cache rid box);
    box

let flush_box t (box : Phys_node.box) =
  let body = Node_codec.encode t.catalog.Catalog.types ~parent_rid:box.parent_rid box.root in
  Record_manager.update t.rm box.rid body;
  notify t box.rid Changed

(* Repoint the on-disk parent RID of a subtree record (cheap patch). *)
let set_parent_rid t rid parent =
  (match with_cache t (fun () -> Rid.Tbl.find_opt t.cache rid) with
  | Some box -> box.parent_rid <- parent
  | None -> ());
  let b = Bytes.create Rid.encoded_size in
  Rid.write b 0 parent;
  Record_manager.patch t.rm rid ~off:Node_codec.parent_rid_offset (Bytes.unsafe_to_string b)

let rec iter_proxies (n : Phys_node.t) f =
  match n.kind with
  | Proxy rid -> f rid
  | Aggregate _ | Frag_aggregate _ -> List.iter (fun c -> iter_proxies c f) (Phys_node.children n)
  | Literal _ -> ()

(* Create a record for [root] (which must fit) and adopt its proxy
   targets. *)
let new_record t ?owner ?near ?policy ~parent_rid root : Phys_node.box =
  let body = Node_codec.encode t.catalog.Catalog.types ~parent_rid root in
  let rid = Record_manager.insert t.rm ?owner ?near ?policy body in
  let box = { Phys_node.rid; root; parent_rid } in
  root.Phys_node.box <- Some box;
  with_cache t (fun () -> Rid.Tbl.replace t.cache rid box);
  iter_proxies root (fun target -> set_parent_rid t target rid);
  notify t rid Changed;
  box

let drop_record t (box : Phys_node.box) =
  Record_manager.delete t.rm box.rid;
  with_cache t (fun () -> Rid.Tbl.remove t.cache box.rid);
  notify t box.rid Dropped;
  (match box.root.Phys_node.box with
  | Some b when b == box -> box.root.Phys_node.box <- None
  | Some _ | None -> ())

let require_box (n : Phys_node.t) =
  match n.box with
  | Some box -> box
  | None -> invalid_arg "Tree_store: node is not attached to a record"

let box_of _t n = require_box (Phys_node.record_root n)

(* Find the proxy object pointing at [rid] inside a decoded subtree. *)
let find_proxy (root : Phys_node.t) rid =
  let exception Found of Phys_node.t in
  let rec go (n : Phys_node.t) =
    match n.kind with
    | Proxy r when Rid.equal r rid -> raise (Found n)
    | Proxy _ | Literal _ -> ()
    | Aggregate _ | Frag_aggregate _ -> List.iter go (Phys_node.children n)
  in
  match go root with
  | () -> failwith "Tree_store: dangling record (no proxy in parent)"
  | exception Found n -> n

(* A scaffolding grouping aggregate (not a fragment aggregate). *)
let is_scaffold_group (n : Phys_node.t) =
  Phys_node.is_scaffolding n
  && match n.kind with Aggregate _ -> true | Frag_aggregate _ | Literal _ | Proxy _ -> false

(* ------------------------------------------------------------------ *)
(* Logical navigation                                                  *)

let rec expand t (items : Phys_node.t list) () : Phys_node.t Seq.node =
  match items with
  | [] -> Seq.Nil
  | item :: rest -> (
    match item.Phys_node.kind with
    | Proxy rid ->
      let root = (fetch t rid).root in
      if is_scaffold_group root then expand t (Phys_node.children root @ rest) ()
      else Seq.Cons (root, expand t rest)
    | Aggregate _ when Phys_node.is_scaffolding item ->
      (* Defensive: embedded scaffolding groups are not normally created. *)
      expand t (Phys_node.children item @ rest) ()
    | Aggregate _ | Frag_aggregate _ | Literal _ -> Seq.Cons (item, expand t rest))

(* Traced variant of [expand]: each item carries the number of record hops
   taken to reach it, so the proxy-chain-length histogram counts how many
   fetches a logical child is away from its facade parent (scaffolding
   groups add hops without producing logical nodes). *)
let rec expand_traced t obs (items : (Phys_node.t * int) list) () : Phys_node.t Seq.node =
  match items with
  | [] -> Seq.Nil
  | (item, hops) :: rest -> (
    match item.Phys_node.kind with
    | Proxy rid ->
      let root = (fetch t rid).root in
      let hops = hops + 1 in
      Natix_obs.Obs.emit obs (Natix_obs.Event.Proxy_hop { rid; chain = hops });
      if is_scaffold_group root then
        expand_traced t obs
          (List.map (fun c -> (c, hops)) (Phys_node.children root) @ rest)
          ()
      else begin
        Natix_obs.Obs.observe obs Natix_obs.Obs.proxy_chain_hist (float_of_int hops);
        Seq.Cons (root, expand_traced t obs rest)
      end
    | Aggregate _ when Phys_node.is_scaffolding item ->
      expand_traced t obs (List.map (fun c -> (c, hops)) (Phys_node.children item) @ rest) ()
    | Aggregate _ | Frag_aggregate _ | Literal _ -> Seq.Cons (item, expand_traced t obs rest))

let logical_children t (n : Phys_node.t) : Phys_node.t Seq.t =
  match n.kind with
  | Aggregate _ when Phys_node.is_facade n -> (
    match t.obs with
    | None -> expand t (Phys_node.children n)
    | Some obs -> expand_traced t obs (List.map (fun c -> (c, 0)) (Phys_node.children n)))
  | Aggregate _ | Frag_aggregate _ | Literal _ | Proxy _ -> Seq.empty

let is_element (n : Phys_node.t) =
  Phys_node.is_facade n
  && match n.kind with Aggregate _ -> true | Frag_aggregate _ | Literal _ | Proxy _ -> false

let is_literal (n : Phys_node.t) =
  match n.kind with
  | Literal _ | Frag_aggregate _ -> true
  | Aggregate _ | Proxy _ -> false

(* Logical parent of [n] together with the physical child of that parent
   on the path down to [n]; [None] at the document root. *)
let parent_link t (n : Phys_node.t) : (Phys_node.t * Phys_node.t) option =
  let rec up (n : Phys_node.t) =
    match n.parent with
    | Some p -> if is_element p then Some (p, n) else up p
    | None ->
      let box = require_box n in
      if Rid.is_null box.parent_rid then None
      else begin
        let pbox = fetch t box.parent_rid in
        let px = find_proxy pbox.root box.rid in
        up px
      end
  in
  up n

let logical_parent t n = Option.map fst (parent_link t n)

let literal_of (n : Phys_node.t) =
  match n.kind with
  | Literal v -> Some v
  | Aggregate _ | Frag_aggregate _ | Proxy _ -> None

let literal_to_string (v : Phys_node.literal) =
  match v with
  | Str s | Uri s -> s
  | Int8 v | Int16 v -> string_of_int v
  | Int32 v -> Int32.to_string v
  | Int64 v -> Int64.to_string v
  | Float v -> string_of_float v

let text_of t (n : Phys_node.t) =
  match n.kind with
  | Literal v -> literal_to_string v
  | Frag_aggregate _ ->
    let buf = Buffer.create 256 in
    let rec walk (n : Phys_node.t) =
      match n.kind with
      | Literal v -> Buffer.add_string buf (literal_to_string v)
      | Proxy rid -> walk (fetch t rid).root
      | Aggregate _ | Frag_aggregate _ -> List.iter walk (Phys_node.children n)
    in
    walk n;
    Buffer.contents buf
  | Aggregate _ | Proxy _ -> invalid_arg "Tree_store.text_of: not a text node"

(* ------------------------------------------------------------------ *)
(* The split algorithm (§3.2)                                          *)

(* Replace an oversized literal root by a fragment aggregate of chunks so
   that the separator search has edges to cut (DESIGN.md §4.6). *)
let fragment_literal t (n : Phys_node.t) =
  match n.kind with
  | Literal (Str s) | Literal (Uri s) ->
    let chunk = max 1 (max_record_size t / 2) in
    let len = String.length s in
    let rec chunks pos =
      if pos >= len then []
      else begin
        let l = min chunk (len - pos) in
        Phys_node.literal (Str (String.sub s pos l)) :: chunks (pos + l)
      end
    in
    let cs = chunks 0 in
    let old_size = n.size in
    n.kind <- Frag_aggregate { children = cs };
    List.iter (fun (c : Phys_node.t) -> c.parent <- Some n) cs;
    n.size <- Phys_node.embedded_header_size + List.fold_left (fun a (c : Phys_node.t) -> a + c.size) 0 cs;
    (match n.parent with
    | Some p -> Phys_node.add_size p (n.size - old_size)
    | None -> ())
  | Literal _ | Aggregate _ | Frag_aggregate _ | Proxy _ ->
    invalid_arg "Tree_store.fragment_literal: not a string literal"

(* Separator search (§3.2.2): descend from the record root into the child
   whose subtree contains the configured split target, stopping at leaves
   and at subtrees smaller than the split tolerance.  Children pinned to
   their parent by the Split Matrix are descended through (they stay with
   the separator), never chosen as [d]. *)
let find_d t (root : Phys_node.t) =
  let tolerance =
    int_of_float (t.config.Config.split_tolerance *. float_of_int t.config.Config.page_size)
  in
  let retained (p : Phys_node.t) (c : Phys_node.t) =
    Phys_node.is_facade c
    && Split_matrix.get t.config.Config.matrix ~parent:p.label ~child:c.label = Split_matrix.Cluster
  in
  let rec descend (node : Phys_node.t) target =
    match Phys_node.children node with
    | [] -> node
    | cs ->
      (* Child whose byte range contains [target]. *)
      let rec pick before = function
        | [ c ] -> (before, c)
        | c :: rest ->
          if float_of_int (before + c.Phys_node.size) >= target then (before, c)
          else pick (before + c.Phys_node.size) rest
        | [] -> assert false
      in
      let before, c = pick 0 cs in
      if retained node c then begin
        if Phys_node.is_leaf c then begin
          (* Cannot cut a pinned leaf: fall back to the largest free child. *)
          match
            List.filter (fun x -> not (retained node x)) cs
            |> List.sort (fun (a : Phys_node.t) b -> Int.compare b.size a.size)
          with
          | [] -> raise (Unsplittable "all children pinned to the parent by the Split Matrix")
          | free :: _ -> free
        end
        else descend c (target -. float_of_int (before + Phys_node.embedded_header_size))
      end
      else if Phys_node.is_leaf c || c.Phys_node.size < tolerance then c
      else descend c (target -. float_of_int (before + Phys_node.embedded_header_size))
  in
  let target = t.config.Config.split_target *. float_of_int root.size in
  let d = descend root target in
  if d == root then raise (Unsplittable "record root has no children to distribute");
  d

(* Split [box] in place: redistribute content onto partition records whose
   parent will be the record identified by [dest]; the separator remains as
   [box]'s root.  [materialize] is passed in to allow mutual recursion with
   oversized-partition handling. *)
let partition_record t (box : Phys_node.box) ~dest ~materialize =
  (* Sampled before the split rearranges anything: how full the page
     holding the record's bytes was when growth forced the split (the
     home page after forwarding — the RID's page may hold only a
     tombstone).  The fill itself comes from the free-space inventory;
     resolving forwarding re-fixes a page that is already hot, charging
     no simulated I/O. *)
  let fill_at_entry =
    match t.obs with
    | None -> 0.
    | Some _ ->
      Segment.fill_factor (Record_manager.segment t.rm) (Record_manager.home_page t.rm box.rid)
  in
  let bytes_at_entry = Phys_node.record_size box.root in
  (match box.root.Phys_node.kind with
  | Literal _ -> fragment_literal t box.root
  | Aggregate _ | Frag_aggregate _ | Proxy _ -> ());
  let d = find_d t box.root in
  (* Path from the parent of [d] up to the root. *)
  let rec path_to_root (n : Phys_node.t) acc =
    match n.parent with
    | None -> n :: acc
    | Some p -> path_to_root p (n :: acc)
  in
  let path =
    match d.parent with
    | None -> raise (Unsplittable "separator would be empty")
    | Some p -> List.rev (path_to_root p [])  (* bottom-up: parent(d) first *)
  in
  let near = Rid.page box.rid in
  let progress = ref 0 in
  let retained (p : Phys_node.t) (c : Phys_node.t) =
    Phys_node.is_facade c
    && Split_matrix.get t.config.Config.matrix ~parent:p.label ~child:c.label = Split_matrix.Cluster
  in
  (* Turn a maximal run of sibling partition roots into the node that
     replaces them in the separator: the proxy itself for a single proxy
     (scaffolding-avoidance case 1), otherwise a proxy to a new partition
     record (grouping siblings under one scaffolding aggregate). *)
  let emit_run (run : Phys_node.t list) : Phys_node.t list =
    match run with
    | [] -> []
    | [ ({ Phys_node.kind = Proxy _; _ } as only) ] ->
      only.Phys_node.parent <- None;
      [ only ]
    | run ->
      List.iter (fun (n : Phys_node.t) -> n.Phys_node.parent <- None) run;
      let part_root =
        match run with
        | [ single ] -> single
        | many -> Phys_node.scaffold_aggregate many
      in
      progress := !progress + part_root.Phys_node.size;
      let pbox = materialize t ~near ~parent_rid:dest part_root in
      [ Phys_node.proxy pbox.Phys_node.rid ]
  in
  (* Rebuild children of one separator level: partition [items] into runs
     broken by pinned children (which stay in the separator). *)
  let rebuild_side (p : Phys_node.t) (items : Phys_node.t list) : Phys_node.t list =
    let flush_run acc run = List.rev_append (emit_run (List.rev run)) acc in
    let rec go acc run = function
      | [] -> List.rev (flush_run acc run)
      | c :: rest ->
        if retained p c then go (c :: flush_run acc run) [] rest
        else go acc (c :: run) rest
    in
    go [] [] items
  in
  (* Process levels bottom-up so each parent sees its rebuilt child. *)
  let rec process (levels : Phys_node.t list) (path_child : Phys_node.t option) =
    match levels with
    | [] -> ()
    | p :: up ->
      let cs = Phys_node.children p in
      let boundary = match path_child with None -> d | Some c -> c in
      let rec split_at pre = function
        | [] -> failwith "Tree_store.partition_record: path child missing"
        | c :: rest when c == boundary -> (List.rev pre, rest)
        | c :: rest -> split_at (c :: pre) rest
      in
      let pre, post = split_at [] cs in
      let left = rebuild_side p pre in
      let right =
        match path_child with
        | None ->
          (* Deepest level: d and its right siblings form the right
             partition.  When d has no left siblings that would make the
             partition the whole record and no progress would be made
             (materializing it re-splits the identical tree), so cut
             between d and its right siblings instead. *)
          (match pre with
          | [] -> rebuild_side p [ d ] @ rebuild_side p post
          | _ :: _ -> rebuild_side p (d :: post))
        | Some c ->
          ignore c;
          rebuild_side p post
      in
      let keep = match path_child with None -> [] | Some c -> [ c ] in
      Phys_node.set_children p (left @ keep @ right);
      process up (Some p)
  in
  process path None;
  if !progress = 0 then
    raise (Unsplittable "split produced no partitions (Split Matrix pins everything)");
  Atomic.incr t.splits;
  match t.obs with
  | None -> ()
  | Some obs ->
    let decision = event_decision t.last_decision in
    Natix_obs.Obs.emit obs
      (Natix_obs.Event.Split
         { rid = box.rid; decision; fill = fill_at_entry; record_bytes = bytes_at_entry });
    Natix_obs.Obs.incr obs ("split." ^ Natix_obs.Event.decision_name decision);
    Natix_obs.Obs.observe obs Natix_obs.Obs.split_fill_hist fill_at_entry

(* Create a record for [root], splitting it locally first if it exceeds
   the page capacity (needed when a partition or a standalone subtree is
   itself oversized). *)
let rec materialize t ?policy ~near ~parent_rid (root : Phys_node.t) : Phys_node.box =
  if Phys_node.record_size root <= max_record_size t then new_record t ~near ?policy ~parent_rid root
  else begin
    (* Reserve the record's identity with a placeholder, then shrink the
       real content in place. *)
    let placeholder = Phys_node.scaffold_aggregate [] in
    let box = new_record t ~near ?policy ~parent_rid placeholder in
    placeholder.Phys_node.box <- None;
    box.root <- root;
    root.Phys_node.box <- Some box;
    shrink_in_place t box;
    box
  end

(* Repeatedly partition until the separator fits, keeping it as the
   record's root (used for root records and freshly materialised
   subtrees). *)
and shrink_in_place t (box : Phys_node.box) =
  if Phys_node.record_size box.root > max_record_size t then begin
    partition_record t box ~dest:box.rid
      ~materialize:(fun t ~near ~parent_rid root -> materialize t ~near ~parent_rid root);
    shrink_in_place t box
  end
  else flush_box t box

(* The tree growth procedure's overflow handling: split the record and
   move the separator into the parent record (recursively). *)
let rec grow_check t (box : Phys_node.box) =
  if Phys_node.record_size box.root <= max_record_size t then flush_box t box
  else if Rid.is_null box.parent_rid then
    (* Root record: the separator becomes the new root content; the RID is
       reused so the document catalog stays valid. *)
    shrink_in_place t box
  else begin
    let dest = box.parent_rid in
    partition_record t box ~dest
      ~materialize:(fun t ~near ~parent_rid root -> materialize t ~near ~parent_rid root);
    let sep_root = box.root in
    let pbox = fetch t dest in
    let px = find_proxy pbox.root box.rid in
    drop_record t box;
    let host =
      match px.Phys_node.parent with
      | Some h -> h
      | None -> failwith "Tree_store: proxy cannot be a record root"
    in
    let idx = Phys_node.index_of host px in
    Phys_node.remove_child host px;
    (* Scaffolding-avoidance case 2: a scaffolding separator root is
       disregarded; its children are inserted into the parent instead. *)
    let to_insert =
      if is_scaffold_group sep_root then begin
        let cs = Phys_node.children sep_root in
        List.iter (fun (c : Phys_node.t) -> c.Phys_node.parent <- None) cs;
        cs
      end
      else begin
        sep_root.Phys_node.parent <- None;
        [ sep_root ]
      end
    in
    List.iteri (fun i n -> Phys_node.insert_child host ~index:(idx + i) n) to_insert;
    (* Records referenced from the separator now hang off the parent. *)
    List.iter (fun n -> iter_proxies n (fun target -> set_parent_rid t target dest)) to_insert;
    grow_check t pbox
  end

(* ------------------------------------------------------------------ *)
(* Merging (dynamic re-clustering on deletion)                         *)

let rec try_merge t (box : Phys_node.box) =
  let threshold = t.config.Config.merge_threshold in
  if threshold > 0. then begin
    let limit = int_of_float (threshold *. float_of_int (max_record_size t)) in
    if Phys_node.record_size box.root < limit then begin
      (* Inline the first child record that keeps us under the limit. *)
      let candidate = ref None in
      (try
         iter_proxies box.root (fun rid ->
             let tbox = fetch t rid in
             let delta =
               tbox.root.Phys_node.size - (Phys_node.embedded_header_size + Rid.encoded_size)
             in
             if Phys_node.record_size box.root + delta <= limit then begin
               candidate := Some tbox;
               raise Exit
             end)
       with Exit -> ());
      match !candidate with
      | None -> flush_box t box
      | Some tbox ->
        let px = find_proxy box.root tbox.rid in
        let host =
          match px.Phys_node.parent with
          | Some h -> h
          | None -> failwith "Tree_store: proxy cannot be a record root"
        in
        let idx = Phys_node.index_of host px in
        Phys_node.remove_child host px;
        let content =
          if is_scaffold_group tbox.root then begin
            let cs = Phys_node.children tbox.root in
            List.iter (fun (c : Phys_node.t) -> c.Phys_node.parent <- None) cs;
            cs
          end
          else [ tbox.root ]
        in
        (match t.obs with
        | None -> ()
        | Some obs ->
          Natix_obs.Obs.emit obs
            (Natix_obs.Event.Merge { rid = box.rid; absorbed = tbox.rid }));
        drop_record t tbox;
        List.iteri (fun i n -> Phys_node.insert_child host ~index:(idx + i) n) content;
        List.iter (fun n -> iter_proxies n (fun target -> set_parent_rid t target box.rid)) content;
        Atomic.incr t.merges;
        try_merge t box
    end
    else flush_box t box
  end
  else flush_box t box

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

let mk_payload = function
  | Elem l -> Phys_node.aggregate l []
  | Text s -> Phys_node.literal (Str s)
  | Lit (l, v) -> Phys_node.literal ~label:l v

let payload_label = function
  | Elem l -> l
  | Text _ -> Label.pcdata
  | Lit (l, _) -> l

let insert_embedded t host ~index node =
  Phys_node.insert_child host ~index node;
  grow_check t (box_of t host)

let insert_node t point payload =
  guard_mutate t;
  let node = mk_payload payload in
  (* Physical placement next to the designated sibling, and the logical
     parent for the Split Matrix decision (§3.2.1/§3.3). *)
  let y, host, index =
    match point with
    | First_under y ->
      if not (is_element y) then invalid_arg "Tree_store.insert_node: First_under a non-element";
      (y, y, 0)
    | After prev -> (
      let y, y_child =
        match parent_link t prev with
        | Some link -> link
        | None -> invalid_arg "Tree_store.insert_node: cannot insert after the document root"
      in
      match prev.Phys_node.parent with
      | Some q -> (y, q, Phys_node.index_of q prev + 1)
      | None ->
        (* [prev] is a record root: the new sibling goes next to the proxy
           that points at it. *)
        let box = require_box prev in
        let pbox = fetch t box.parent_rid in
        let px = find_proxy pbox.root box.rid in
        (match px.Phys_node.parent with
        | Some h -> (y, h, Phys_node.index_of h px + 1)
        | None -> (y, y, Phys_node.index_of y y_child + 1)))
  in
  let behaviour =
    Split_matrix.get t.config.Config.matrix ~parent:y.Phys_node.label
      ~child:(payload_label payload)
  in
  t.last_decision <- behaviour;
  (match behaviour with
  | Split_matrix.Standalone ->
    (* Always a record of its own; a proxy goes where the node would.  The
       fallback placement policy distinguishes NATIX's locality-preserving
       allocation from the generic-manager emulation (Config). *)
    let host_box = box_of t host in
    let policy = if t.config.Config.standalone_first_fit then `First_fit else `Forward in
    let nbox = materialize t ~policy ~near:(Rid.page host_box.rid) ~parent_rid:host_box.rid node in
    insert_embedded t host ~index (Phys_node.proxy nbox.rid)
  | Split_matrix.Cluster ->
    (* Keep the node in the same record as its logical parent. *)
    let host, index =
      if Phys_node.record_root host == Phys_node.record_root y then (host, index)
      else begin
        (* The designated sibling lives in another record: fall back to a
           position under the parent itself. *)
        let n = List.length (Phys_node.children y) in
        (y, n)
      end
    in
    insert_embedded t host ~index node
  | Split_matrix.Other -> insert_embedded t host ~index node);
  node

let rec delete_descendant_records t (n : Phys_node.t) =
  match n.Phys_node.kind with
  | Proxy rid ->
    let box = fetch t rid in
    delete_descendant_records t box.root;
    drop_record t box
  | Aggregate _ | Frag_aggregate _ ->
    List.iter (delete_descendant_records t) (Phys_node.children n)
  | Literal _ -> ()

(* Remove now-empty scaffolding groups within the record. *)
let rec cleanup_scaffolds (n : Phys_node.t) =
  if is_scaffold_group n && Phys_node.children n = [] then begin
    match n.Phys_node.parent with
    | Some p ->
      Phys_node.remove_child p n;
      cleanup_scaffolds p
    | None -> ()
  end

(* After a deletion shrank a record, try to inline child records into it,
   then try the same one level up (the shrunken record may now fit into its
   parent) — the "merged into clusters" of §1. *)
let merge_around t (box : Phys_node.box) =
  try_merge t box;
  if not (Rid.is_null box.parent_rid) then try_merge t (fetch t box.parent_rid)

let delete_node t (node : Phys_node.t) =
  guard_mutate t;
  match node.Phys_node.parent with
  | Some p ->
    delete_descendant_records t node;
    Phys_node.remove_child p node;
    cleanup_scaffolds p;
    merge_around t (box_of t p)
  | None ->
    let box = require_box node in
    if Rid.is_null box.parent_rid then
      invalid_arg "Tree_store.delete_node: use delete_document for the root";
    delete_descendant_records t node;
    let pbox = fetch t box.parent_rid in
    let px = find_proxy pbox.root box.rid in
    drop_record t box;
    (match px.Phys_node.parent with
    | Some h ->
      Phys_node.remove_child h px;
      cleanup_scaffolds h
    | None -> failwith "Tree_store: proxy cannot be a record root");
    merge_around t pbox

let update_text t (node : Phys_node.t) s =
  guard_mutate t;
  (match node.Phys_node.kind with
  | Literal (Str _) | Literal (Uri _) | Frag_aggregate _ -> ()
  | Literal _ | Aggregate _ | Proxy _ ->
    invalid_arg "Tree_store.update_text: not a text node");
  delete_descendant_records t node;
  let old_size = node.Phys_node.size in
  node.Phys_node.kind <- Literal (Str s);
  node.Phys_node.size <- Phys_node.embedded_header_size + String.length s;
  (match node.Phys_node.parent with
  | Some p -> Phys_node.add_size p (node.Phys_node.size - old_size)
  | None -> ());
  grow_check t (box_of t node)

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)

let document_rid t name = with_catalog_lock t (fun () -> Hashtbl.find_opt t.catalog.Catalog.docs name)

let create_document t ~name ~root =
  guard_mutate t;
  if with_catalog_lock t (fun () -> Hashtbl.mem t.catalog.Catalog.docs name) then
    invalid_arg (Printf.sprintf "Tree_store.create_document: %S exists" name);
  let root_node = Phys_node.aggregate (label t root) [] in
  if in_transaction t then begin
    (* Transactional creation: the document gets a private allocation
       arena, so its mutation phase (this one and every later one) never
       writes a page any other writer can touch.  Both catalog entries
       are journalled; they become durable with the commit. *)
    let arena = Segment.fresh_arena (Record_manager.segment t.rm) in
    meta_put t (arena_meta_key name) (string_of_int arena);
    let box = new_record t ~owner:arena ~parent_rid:Rid.null root_node in
    doc_put t name box.rid;
    root_node
  end
  else begin
    let box = new_record t ~parent_rid:Rid.null root_node in
    doc_put t name box.rid;
    Catalog.save t.rm t.catalog;
    root_node
  end

let open_document t name =
  match document_rid t name with
  | None -> None
  | Some rid -> Some (fetch t rid).root

let list_documents t =
  with_catalog_lock t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.catalog.Catalog.docs [])
  |> List.sort String.compare

let delete_document t name =
  guard_mutate t;
  match document_rid t name with
  | None -> invalid_arg (Printf.sprintf "Tree_store.delete_document: no document %S" name)
  | Some rid ->
    let arena = document_arena t name in
    let box = fetch t rid in
    delete_descendant_records t box.root;
    drop_record t box;
    doc_remove t name;
    (match arena with
    | Some arena ->
      (* Retag the dying document's pages back to the shared arena before
         the catalog forgets the arena id — no page may keep an ownership
         tag fsck cannot match to a document.  Inside a transaction the
         reclaimed space is quarantined (registered as full) until the
         next reopen rescans it: handing it to the shared arena's
         inventory immediately would let a concurrent committer's catalog
         write land on a page this still-uncommitted transaction owns. *)
      Segment.release_arena ~quarantine:(in_transaction t) (Record_manager.segment t.rm) arena;
      meta_remove t (arena_meta_key name)
    | None -> ());
    if not (in_transaction t) then Catalog.save t.rm t.catalog

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let iter_records t rid f =
  let rec go rid depth =
    let box = fetch t rid in
    f rid box.Phys_node.root depth;
    iter_proxies box.root (fun target -> go target (depth + 1))
  in
  go rid 0

let check_document t name =
  let fail fmt = Printf.ksprintf failwith fmt in
  match document_rid t name with
  | None -> fail "check_document: no document %S" name
  | Some root_rid ->
    let rec check_record rid expected_parent =
      let box = fetch t rid in
      if not (Rid.equal box.parent_rid expected_parent) then
        fail "record %s has parent %s, expected %s" (Rid.to_string rid)
          (Rid.to_string box.parent_rid)
          (Rid.to_string expected_parent);
      let rec check_node (n : Phys_node.t) ~embedded =
        if n.Phys_node.size <> Phys_node.compute_size n then
          fail "record %s: cached size %d <> computed %d" (Rid.to_string rid) n.size
            (Phys_node.compute_size n);
        if embedded && is_scaffold_group n then
          fail "record %s: embedded scaffolding group" (Rid.to_string rid);
        List.iter
          (fun (c : Phys_node.t) ->
            (match c.Phys_node.parent with
            | Some p when p == n -> ()
            | Some _ | None -> fail "record %s: broken parent link" (Rid.to_string rid));
            check_node c ~embedded:true)
          (Phys_node.children n)
      in
      check_node box.root ~embedded:false;
      if Phys_node.record_size box.root > max_record_size t then
        fail "record %s exceeds a page (%d > %d)" (Rid.to_string rid)
          (Phys_node.record_size box.root) (max_record_size t);
      (* Round-trip the byte image. *)
      let body = Record_manager.read t.rm rid in
      let decoded, _ = Node_codec.decode t.catalog.Catalog.types body in
      if not (Node_codec.structural_equal decoded box.root) then
        fail "record %s: decoded image differs from the cached tree" (Rid.to_string rid);
      iter_proxies box.root (fun target -> check_record target rid)
    in
    check_record root_rid Rid.null
