open Natix_util
module Rm = Natix_store.Record_manager
module Btree = Natix_store.Btree

(* One B+-tree holds both directions:
     'F' ^ be32(label) ^ rid8  ->  node count (forward postings)
     'R' ^ rid8 ^ be32(label)  ->  node count (per-record label sets)
   The per-record entries let [refresh] diff a record's new label counts
   against what the index believes without any auxiliary state. *)

type t = {
  store : Tree_store.t;
  tree : Btree.t;
  name : string;
  pending_changes : Tree_store.record_event Rid.Tbl.t;
  pending_lock : Mutex.t;
      (* The change listener fires from every mutating domain — under
         concurrent transactional writers that is several at once — so
         the pending table needs a lock.  Leaf: held only for table
         operations. *)
  mutable in_sync : bool;
      (* Whether the index reflects every store change up to the epoch it
         last stamped (modulo [pending_changes], which the listener keeps
         complete while this handle is attached).  False when the stamped
         epoch at open time is behind the store — changes happened while
         no listener was attached — until [rebuild] repairs it. *)
}

let with_pending t f =
  Mutex.lock t.pending_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.pending_lock) f

let be32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.unsafe_to_string b

let of_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let rid8 rid =
  let b = Bytes.create Rid.encoded_size in
  Rid.write b 0 rid;
  Bytes.unsafe_to_string b

let count8 v =
  let b = Bytes.create 8 in
  Bytes_util.set_i64 b 0 (Int64.of_int v);
  Bytes.unsafe_to_string b

let of_count8 s = Int64.to_int (Bytes_util.get_i64 (Bytes.unsafe_of_string s) 0)
let fwd_key label rid = "F" ^ be32 label ^ rid8 rid
let rev_key rid label = "R" ^ rid8 rid ^ be32 label
let meta_key name = "index:" ^ name
let epoch_key name = "index:" ^ name ^ ":epoch"

let persisted store ~name = Tree_store.meta_find store (meta_key name) <> None

(* Stamp the store epoch the index is now consistent with.  In-memory
   only; it becomes durable with the next catalog save, i.e. together
   with the index pages themselves at checkpoint. *)
let stamp_epoch t =
  Tree_store.meta_put t.store (epoch_key t.name)
    (string_of_int (Tree_store.change_epoch t.store))

let stamped_epoch store ~name =
  Option.bind (Tree_store.meta_find store (epoch_key name)) int_of_string_opt

let stale t = not t.in_sync

(* Keep the *last* event per rid: a trailing [Dropped] means the tree
   store gave the rid up, and whatever occupies it at refresh time (the
   record manager may have handed it to this index's own B+-tree pages)
   is not a tree record and must not be fetched, let alone indexed. *)
let attach t =
  Tree_store.set_change_listener t.store
    (Some (fun rid event -> with_pending t (fun () -> Rid.Tbl.replace t.pending_changes rid event)))

let create store ~name =
  if persisted store ~name then
    invalid_arg (Printf.sprintf "Element_index.create: index %S exists" name);
  let tree = Btree.create (Tree_store.record_manager store) in
  Tree_store.meta_put store (meta_key name) (rid8 (Btree.root tree));
  (* An empty index is consistent with an empty store; on a store that
     already holds documents it is stale until the caller rebuilds. *)
  let in_sync = Tree_store.list_documents store = [] in
  let t =
    { store; tree; name; pending_changes = Rid.Tbl.create 64; pending_lock = Mutex.create (); in_sync }
  in
  if in_sync then stamp_epoch t;
  Catalog.save (Tree_store.record_manager store) (Tree_store.catalog store);
  attach t;
  t

let open_index store ~name =
  match Tree_store.meta_find store (meta_key name) with
  | None -> None
  | Some root ->
    let tree =
      Btree.open_tree (Tree_store.record_manager store)
        (Rid.read (Bytes.unsafe_of_string root) 0)
    in
    (* The index is current only if it stamped the epoch the store is at
       now: a lower (or missing) stamp means documents changed while no
       listener was attached, and the postings silently miss them. *)
    let in_sync =
      match stamped_epoch store ~name with
      | Some e -> e >= Tree_store.change_epoch store
      | None -> false
    in
    let t =
      { store; tree; name; pending_changes = Rid.Tbl.create 64; pending_lock = Mutex.create (); in_sync }
    in
    attach t;
    Some t

(* Facade labels of one record's subtree (pcdata text excluded). *)
let label_counts (root : Phys_node.t) =
  let counts = Hashtbl.create 16 in
  let bump label = Hashtbl.replace counts label (1 + Option.value ~default:0 (Hashtbl.find_opt counts label)) in
  let rec go (n : Phys_node.t) =
    (match n.Phys_node.kind with
    | Phys_node.Aggregate _ when Phys_node.is_facade n -> bump n.Phys_node.label
    | Phys_node.Literal _ | Phys_node.Frag_aggregate _ ->
      if Phys_node.is_facade n && not (Label.equal n.Phys_node.label Label.pcdata) then
        bump n.Phys_node.label
    | Phys_node.Aggregate _ | Phys_node.Proxy _ -> ());
    match n.Phys_node.kind with
    | Phys_node.Frag_aggregate _ ->
      (* One logical node; its chunks are not indexed. *)
      ()
    | Phys_node.Aggregate _ | Phys_node.Literal _ | Phys_node.Proxy _ ->
      List.iter go (Phys_node.children n)
  in
  go root;
  counts

(* Stored label counts of a record, from the reverse entries. *)
let stored_counts t rid =
  let lo = "R" ^ rid8 rid in
  let hi = lo ^ "\xff\xff\xff\xff\xff" in
  let acc = ref [] in
  Btree.iter_range t.tree ~lo:(Some lo) ~hi:(Some hi) (fun k v ->
      acc := (of_be32 k (1 + Rid.encoded_size), of_count8 v) :: !acc);
  !acc

let apply_record ?(live = true) t rid =
  let current =
    if live && Rm.exists (Tree_store.record_manager t.store) rid then begin
      (* [live] distinguishes a tree record from a reused rid: a freed
         rid can be re-allocated to a foreign record (including this
         index's own B+-tree pages), which may well decode — fetching
         it would index garbage.  The decode guard below is only a
         backstop for torn reads. *)
      match Tree_store.fetch t.store rid with
      | box -> label_counts box.Phys_node.root
      | exception _ -> Hashtbl.create 1
    end
    else Hashtbl.create 1
  in
  let old = stored_counts t rid in
  (* Remove or adjust stale entries. *)
  List.iter
    (fun (label, old_count) ->
      match Hashtbl.find_opt current label with
      | Some c when c = old_count -> Hashtbl.remove current label
      | Some c ->
        Btree.insert t.tree ~key:(fwd_key label rid) ~value:(count8 c);
        Btree.insert t.tree ~key:(rev_key rid label) ~value:(count8 c);
        Hashtbl.remove current label
      | None ->
        Btree.remove t.tree ~key:(fwd_key label rid);
        Btree.remove t.tree ~key:(rev_key rid label))
    old;
  (* Whatever is left is new. *)
  Hashtbl.iter
    (fun label c ->
      Btree.insert t.tree ~key:(fwd_key label rid) ~value:(count8 c);
      Btree.insert t.tree ~key:(rev_key rid label) ~value:(count8 c))
    current

let refresh t =
  (* Folding postings writes the B+-tree's shared-arena pages, which no
     transaction may touch outside its serialised commit section — and
     pending entries can describe records an in-flight transaction is
     still rewriting.  While any transaction is active the fold is
     deferred (the pending table keeps accumulating); the next refresh
     on a quiet store — at the latest, the one inside [checkpoint] —
     folds everything. *)
  if Tree_store.active_txns t.store = 0 && not (Tree_store.in_transaction t.store) then begin
    let rids =
      with_pending t (fun () ->
          let rids = Rid.Tbl.fold (fun rid ev acc -> (rid, ev) :: acc) t.pending_changes [] in
          Rid.Tbl.reset t.pending_changes;
          rids)
    in
    List.iter
      (fun (rid, ev) -> apply_record ~live:(ev = Tree_store.Changed) t rid)
      rids;
    (* Only a synced index may advance its stamp: pending changes cover
       everything since the last stamp, but not changes from before this
       handle was attached. *)
    if t.in_sync then stamp_epoch t
  end

let pending t = with_pending t (fun () -> Rid.Tbl.length t.pending_changes)

let rebuild t =
  with_pending t (fun () -> Rid.Tbl.reset t.pending_changes);
  Btree.clear t.tree;
  List.iter
    (fun doc ->
      match Tree_store.document_rid t.store doc with
      | None -> ()
      | Some rid -> Tree_store.iter_records t.store rid (fun rid _root _ -> apply_record t rid))
    (Tree_store.list_documents t.store);
  t.in_sync <- true;
  stamp_epoch t

let records_with t label =
  refresh t;
  let lo = "F" ^ be32 label in
  let hi = lo ^ "\xff\xff\xff\xff\xff\xff\xff\xff\xff" in
  let acc = ref [] in
  Btree.iter_range t.tree ~lo:(Some lo) ~hi:(Some hi) (fun k _ ->
      acc := Rid.read (Bytes.unsafe_of_string k) 5 :: !acc);
  List.rev !acc

let count t label =
  refresh t;
  let lo = "F" ^ be32 label in
  let hi = lo ^ "\xff\xff\xff\xff\xff\xff\xff\xff\xff" in
  let n = ref 0 in
  Btree.iter_range t.tree ~lo:(Some lo) ~hi:(Some hi) (fun _ v -> n := !n + of_count8 v);
  !n

let scan t label =
  let rids = records_with t label in
  List.concat_map
    (fun rid ->
      let box = Tree_store.fetch t.store rid in
      let acc = ref [] in
      let rec go (n : Phys_node.t) =
        if Label.equal n.Phys_node.label label && Phys_node.is_facade n then acc := n :: !acc;
        match n.Phys_node.kind with
        | Phys_node.Frag_aggregate _ -> ()
        | Phys_node.Aggregate _ | Phys_node.Literal _ | Phys_node.Proxy _ ->
          List.iter go (Phys_node.children n)
      in
      go box.Phys_node.root;
      List.rev !acc)
    rids

let labels t =
  refresh t;
  let acc = Hashtbl.create 16 in
  Btree.iter_range t.tree ~lo:(Some "F") ~hi:(Some "G") (fun k v ->
      let label = of_be32 k 1 in
      Hashtbl.replace acc label (of_count8 v + Option.value ~default:0 (Hashtbl.find_opt acc label)));
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) acc []
  |> List.sort (fun (a, _) (b, _) -> Label.compare a b)

let check t =
  refresh t;
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Ground truth from a full walk. *)
  let truth : (Label.t * Rid.t, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun doc ->
      match Tree_store.document_rid t.store doc with
      | None -> ()
      | Some root_rid ->
        Tree_store.iter_records t.store root_rid (fun rid root _ ->
            Hashtbl.iter
              (fun label c -> Hashtbl.replace truth (label, rid) c)
              (label_counts root)))
    (Tree_store.list_documents t.store);
  let seen = ref 0 in
  Btree.iter_range t.tree ~lo:(Some "F") ~hi:(Some "G") (fun k v ->
      let label = of_be32 k 1 in
      let rid = Rid.read (Bytes.unsafe_of_string k) 5 in
      incr seen;
      match Hashtbl.find_opt truth (label, rid) with
      | Some c when c = of_count8 v -> ()
      | Some c -> fail "index %s: label %d rid %s count %d <> %d" t.name label (Rid.to_string rid) (of_count8 v) c
      | None -> fail "index %s: stale posting for label %d rid %s" t.name label (Rid.to_string rid));
  if !seen <> Hashtbl.length truth then
    fail "index %s: %d postings but %d expected" t.name !seen (Hashtbl.length truth)
