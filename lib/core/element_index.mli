(** Element index (the index management module of paper Fig. 1).

    Maps element labels to the records that materialise nodes with that
    label, backed by two disk-resident B+-trees in the same store (label →
    record postings and record → label counts).  It accelerates the scans
    §4.4.6 motivates — "scan all elements of a given type" — in time
    proportional to the records actually containing the label, instead of
    a full traversal.  Results are in record order, not document order
    (exactly the trade-off the paper describes for order-irrelevant
    queries).

    Maintenance is deferred: the index subscribes to the store's record
    change log and folds pending changes in on {!refresh} (query entry
    points refresh automatically).  The index roots persist in the store
    catalog, so the index survives reopening.

    {b Staleness.}  Alongside its roots the index stamps the store's
    {!Tree_store.change_epoch} it last folded changes in at.  When the
    store changed while no listener was attached (e.g. a load in a
    session opened without the index), the stamp on reopen is behind the
    store's epoch and the index reports {!stale}: its postings silently
    miss nodes, so consumers must either {!rebuild} it or plan without
    it.  {!Document_manager.create}'s index modes encapsulate both
    policies. *)

open Natix_util

type t

(** [create store ~name] builds a fresh (empty) index, registers its roots
    under [name] in the catalog and attaches the change listener.
    @raise Invalid_argument if [name] is already registered. *)
val create : Tree_store.t -> name:string -> t

(** Reattach to a persisted index (and its change listener). *)
val open_index : Tree_store.t -> name:string -> t option

(** Whether an index named [name] is registered in the store's catalog
    (without opening it). *)
val persisted : Tree_store.t -> name:string -> bool

(** Whether the store changed while no listener was attached, i.e. the
    persisted epoch stamp is behind the store's change epoch: postings may
    silently miss nodes until {!rebuild}.  A freshly {!create}d index on a
    store that already holds documents is also stale until rebuilt. *)
val stale : t -> bool

(** Drop pending changes and rebuild from every document — the repair for
    a {!stale} index (bulk loads that happened while no listener was
    attached).  Re-stamps the epoch. *)
val rebuild : t -> unit

(** Fold pending record changes into the index. *)
val refresh : t -> unit

(** Records containing at least one facade node with this label. *)
val records_with : t -> Label.t -> Rid.t list

(** Total number of nodes with this label across all documents. *)
val count : t -> Label.t -> int

(** All facade nodes with this label, unordered (record order). *)
val scan : t -> Label.t -> Phys_node.t list

(** Labels present in the index, with their node counts. *)
val labels : t -> (Label.t * int) list

(** Number of record changes queued for {!refresh}. *)
val pending : t -> int

(** Verify the index against a full scan of all documents.
    @raise Failure on any divergence. *)
val check : t -> unit
