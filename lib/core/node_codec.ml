open Natix_util

let parent_rid_offset = 2

let tag_of_node (n : Phys_node.t) : Node_type_table.content_tag =
  match n.kind with
  | Aggregate _ -> Tag_aggregate
  | Frag_aggregate _ -> Tag_frag_aggregate
  | Proxy _ -> Tag_proxy
  | Literal (Str _) -> Tag_str
  | Literal (Int8 _) -> Tag_int8
  | Literal (Int16 _) -> Tag_int16
  | Literal (Int32 _) -> Tag_int32
  | Literal (Int64 _) -> Tag_int64
  | Literal (Float _) -> Tag_float
  | Literal (Uri _) -> Tag_uri

let write_literal b off (v : Phys_node.literal) =
  match v with
  | Str s | Uri s -> Bytes.blit_string s 0 b off (String.length s)
  | Int8 v -> Bytes_util.set_u8 b off v
  | Int16 v -> Bytes_util.set_u16 b off v
  | Int32 v -> Bytes_util.set_u32 b off (Int32.to_int v land 0xffffffff)
  | Int64 v -> Bytes_util.set_i64 b off v
  | Float v -> Bytes_util.set_f64 b off v

let encode tbl ~parent_rid (root : Phys_node.t) =
  (match root.kind with
  | Proxy _ -> invalid_arg "Node_codec.encode: proxy root"
  | Aggregate _ | Frag_aggregate _ | Literal _ -> ());
  let size = Phys_node.record_size root in
  let b = Bytes.create size in
  Bytes_util.set_u16 b 0 (Node_type_table.index tbl (tag_of_node root) root.label);
  Rid.write b parent_rid_offset parent_rid;
  let pos = ref Phys_node.standalone_header_size in
  (* The root's header starts at offset 0; its children reference it. *)
  let rec emit parent_off (n : Phys_node.t) =
    let off = !pos in
    Bytes_util.set_u16 b off (Node_type_table.index tbl (tag_of_node n) n.label);
    Bytes_util.set_u16 b (off + 2) n.size;
    Bytes_util.set_u16 b (off + 4) parent_off;
    pos := off + Phys_node.embedded_header_size;
    (match n.kind with
    | Aggregate { children } | Frag_aggregate { children } -> List.iter (emit off) children
    | Literal v ->
      write_literal b !pos v;
      pos := !pos + Phys_node.literal_size v
    | Proxy rid ->
      Rid.write b !pos rid;
      pos := !pos + Rid.encoded_size);
    assert (!pos = off + n.size)
  in
  (match root.kind with
  | Aggregate { children } | Frag_aggregate { children } -> List.iter (emit 0) children
  | Literal v ->
    write_literal b !pos v;
    pos := !pos + Phys_node.literal_size v
  | Proxy _ -> assert false);
  assert (!pos = size);
  Bytes.unsafe_to_string b

let read_literal tag b off len : Phys_node.literal =
  match (tag : Node_type_table.content_tag) with
  | Tag_str -> Str (Bytes.sub_string b off len)
  | Tag_uri -> Uri (Bytes.sub_string b off len)
  | Tag_int8 -> Int8 (Bytes_util.get_u8 b off)
  | Tag_int16 -> Int16 (Bytes_util.get_u16 b off)
  | Tag_int32 -> Int32 (Int32.of_int (Bytes_util.get_u32 b off))
  | Tag_int64 -> Int64 (Bytes_util.get_i64 b off)
  | Tag_float -> Float (Bytes_util.get_f64 b off)
  | Tag_aggregate | Tag_frag_aggregate | Tag_proxy ->
    failwith "Node_codec: literal tag expected"

let decode_parent_rid body = Rid.read (Bytes.unsafe_of_string body) parent_rid_offset

let decode tbl body =
  let b = Bytes.unsafe_of_string body in
  let total = String.length body in
  if total < Phys_node.standalone_header_size then failwith "Node_codec: truncated record";
  let parent_rid = Rid.read b parent_rid_offset in
  (* Decode the embedded node whose header starts at [off]; checks that
     the recorded parent offset matches [expect_parent]. *)
  let rec node off expect_parent : Phys_node.t =
    if off + Phys_node.embedded_header_size > total then failwith "Node_codec: truncated node";
    let tag, label = Node_type_table.entry tbl (Bytes_util.get_u16 b off) in
    let size = Bytes_util.get_u16 b (off + 2) in
    let parent_off = Bytes_util.get_u16 b (off + 4) in
    if parent_off <> expect_parent then failwith "Node_codec: inconsistent parent offset";
    if off + size > total then failwith "Node_codec: node overruns record";
    let payload = off + Phys_node.embedded_header_size in
    let payload_len = size - Phys_node.embedded_header_size in
    match tag with
    | Tag_aggregate | Tag_frag_aggregate ->
      let cs = node_list payload (payload + payload_len) off in
      let n =
        if tag = Tag_aggregate then Phys_node.aggregate label cs
        else Phys_node.frag_aggregate ~label cs
      in
      if n.Phys_node.size <> size then failwith "Node_codec: aggregate size mismatch";
      n
    | Tag_proxy ->
      if payload_len <> Rid.encoded_size then failwith "Node_codec: bad proxy size";
      Phys_node.proxy (Rid.read b payload)
    | Tag_str | Tag_uri | Tag_int8 | Tag_int16 | Tag_int32 | Tag_int64 | Tag_float ->
      Phys_node.literal ~label (read_literal tag b payload payload_len)
  and node_list pos stop parent_off =
    if pos >= stop then []
    else begin
      let n = node pos parent_off in
      n :: node_list (pos + n.Phys_node.size) stop parent_off
    end
  in
  let root_tag, root_label = Node_type_table.entry tbl (Bytes_util.get_u16 b 0) in
  let payload = Phys_node.standalone_header_size in
  let root =
    match root_tag with
    | Tag_aggregate | Tag_frag_aggregate ->
      let cs = node_list payload total 0 in
      if root_tag = Tag_aggregate then Phys_node.aggregate root_label cs
      else Phys_node.frag_aggregate ~label:root_label cs
    | Tag_str | Tag_uri | Tag_int8 | Tag_int16 | Tag_int32 | Tag_int64 | Tag_float ->
      Phys_node.literal ~label:root_label (read_literal root_tag b payload (total - payload))
    | Tag_proxy -> failwith "Node_codec: proxy root"
  in
  if Phys_node.record_size root <> total then failwith "Node_codec: record size mismatch";
  (root, parent_rid)

let rec structural_equal (a : Phys_node.t) (b : Phys_node.t) =
  Label.equal a.label b.label
  &&
  match (a.kind, b.kind) with
  | Aggregate { children = x }, Aggregate { children = y }
  | Frag_aggregate { children = x }, Frag_aggregate { children = y } ->
    List.length x = List.length y && List.for_all2 structural_equal x y
  | Literal u, Literal v -> u = v
  | Proxy u, Proxy v -> Rid.equal u v
  | (Aggregate _ | Frag_aggregate _ | Literal _ | Proxy _), _ -> false
