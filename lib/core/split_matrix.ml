open Natix_util

type behaviour = Standalone | Cluster | Other

type t = {
  default : behaviour;
  entries : (Label.t * Label.t, behaviour) Hashtbl.t;
  child_defaults : (Label.t, behaviour) Hashtbl.t;
}

let create ?(default = Other) () =
  { default; entries = Hashtbl.create 16; child_defaults = Hashtbl.create 16 }

let default_behaviour t = t.default
let set t ~parent ~child b = Hashtbl.replace t.entries (parent, child) b
let set_child_default t ~child b = Hashtbl.replace t.child_defaults child b

let get t ~parent ~child =
  match Hashtbl.find_opt t.entries (parent, child) with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt t.child_defaults child with
    | Some b -> b
    | None -> t.default)

let one_to_one () = create ~default:Standalone ()
let native () = create ~default:Other ()

let behaviour_to_string = function
  | Standalone -> "standalone"
  | Cluster -> "cluster"
  | Other -> "other"
