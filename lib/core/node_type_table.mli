(** The node type table (Appendix A).

    Object headers do not spell out their content type and logical type;
    they store a 2-byte index into a node type table.  The paper keeps one
    table per page; this implementation keeps a single store-wide table
    (persisted with the catalog), which encodes to the same bytes while
    making records movable across pages without re-indexing — see DESIGN.md
    §4.3 for the trade-off.

    An entry is a pair (content tag, logical label).  Content tags
    enumerate the physical node kinds, including the literal subtypes. *)

open Natix_util

type content_tag =
  | Tag_aggregate
  | Tag_frag_aggregate
  | Tag_proxy
  | Tag_str
  | Tag_int8
  | Tag_int16
  | Tag_int32
  | Tag_int64
  | Tag_float
  | Tag_uri

type t

val create : unit -> t

(** [index t tag label] returns the entry's index, interning it if new.
    @raise Failure after 65536 distinct entries. *)
val index : t -> content_tag -> Label.t -> int

(** [entry t idx] decodes an index.
    @raise Invalid_argument on an unknown index. *)
val entry : t -> int -> content_tag * Label.t

val size : t -> int

(** Serialization, for the store catalog. *)

val encode : t -> string

val decode : string -> t
