(** Typed domain errors.

    The document-manager entry points ({!Document_manager.store_document},
    [validate], [insert_fragment]) and the query engine return these
    instead of bare strings, so callers can branch on the failure class;
    {!to_string} renders them for the CLI, and {!exit_code} maps them onto
    the CLI's exit-code conventions. *)

type t =
  | Parse of string  (** malformed XML input *)
  | Validation of { doc : string; detail : string }
      (** a document or fragment violates the document's DTD *)
  | Dtd of { doc : string; detail : string }
      (** the DTD itself cannot be applied (e.g. an undeclared element) *)
  | Query of string  (** path-query syntax or planning failure *)
  | Storage of string
      (** document-layer failure: unknown document, wrong owner, ... *)

val to_string : t -> string

(** CLI exit code for the error: 1 for invalid content
    ([Validation]/[Dtd]), 2 for usage-level failures
    ([Parse]/[Query]/[Storage]).  Codes 3–6 are reserved for the
    storage-corruption exceptions the CLI maps separately. *)
val exit_code : t -> int

val pp : Format.formatter -> t -> unit
