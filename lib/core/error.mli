(** Typed domain errors.

    The document-manager entry points ({!Document_manager.store_document},
    [validate], [insert_fragment]) and the query engine return these
    instead of bare strings, so callers can branch on the failure class;
    {!to_string} renders them for the CLI, and {!exit_code} maps them onto
    the CLI's exit-code conventions. *)

type t =
  | Parse of string  (** malformed XML input *)
  | Validation of { doc : string; detail : string }
      (** a document or fragment violates the document's DTD *)
  | Dtd of { doc : string; detail : string }
      (** the DTD itself cannot be applied (e.g. an undeclared element) *)
  | Query of string  (** path-query syntax or planning failure *)
  | Storage of string
      (** document-layer failure: unknown document, wrong owner, ... *)

(** Escape hatch for failures detected inside lazy sequences, where a
    [result] cannot be threaded to the consumer.  Entry points that force
    their results catch it and return [Error]; the CLI driver maps it to
    {!exit_code} at top level. *)
exception Error of t

(** [raise_error e] raises {!Error}[ e]. *)
val raise_error : t -> 'a

val to_string : t -> string

(** CLI exit code for the error: 1 for invalid content
    ([Validation]/[Dtd]), 2 for usage-level failures
    ([Parse]/[Query]/[Storage]).  Codes 3–6 are reserved for the
    storage-corruption exceptions the CLI maps separately. *)
val exit_code : t -> int

val pp : Format.formatter -> t -> unit
