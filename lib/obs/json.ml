type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parsing ------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "dangling escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > len then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Encode the BMP code point as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | _ -> fail "bad escape");
        go ())
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing input";
    v
  with
  | v -> v
  | exception Bad (at, msg) -> failwith (Printf.sprintf "Json.parse: %s at offset %d" msg at)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
