type t = {
  sink : Sink.t option;
  metrics : Metrics.t;
  mutable now : unit -> float;
  mutable seq : int;
}

let record_size_hist = "record_size_bytes"
let split_fill_hist = "split_fill_factor"
let proxy_chain_hist = "proxy_chain_len"

let create ?sink () =
  let metrics = Metrics.create () in
  Metrics.register_histogram metrics record_size_hist
    ~edges:[| 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768. |];
  Metrics.register_histogram metrics split_fill_hist
    ~edges:[| 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 1.0 |];
  Metrics.register_histogram metrics proxy_chain_hist ~edges:[| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |];
  { sink; metrics; now = (fun () -> 0.); seq = 0 }

let metrics t = t.metrics
let sink t = t.sink
let set_clock t now = t.now <- now
let now_ms t = t.now ()

let emit t kind =
  Metrics.incr t.metrics ("ev." ^ Event.type_name kind);
  match t.sink with
  | None -> ()
  | Some sink ->
    t.seq <- t.seq + 1;
    Sink.emit sink { Event.seq = t.seq; at_ms = t.now (); kind }

let incr ?by t name = Metrics.incr ?by t.metrics name
let observe t name v = Metrics.observe t.metrics name v

let span t name f =
  let t0 = t.now () in
  let finish () =
    let dur_ms = t.now () -. t0 in
    incr t ("span." ^ name);
    emit t (Event.Span { name; dur_ms })
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let events t = match t.sink with None -> [] | Some s -> Sink.events s
let emitted t = match t.sink with None -> 0 | Some s -> Sink.emitted s
let close t = match t.sink with None -> () | Some s -> Sink.close s
