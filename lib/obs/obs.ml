type t = {
  sink : Sink.t option;
  mutable subscribers : (Event.t -> unit) list;  (* newest first; called in reverse *)
  metrics : Metrics.t;
  mutable now : unit -> float;
  mutable seq : int;
  mutable next_span : int;  (* id generator; 0 is reserved for "no parent" *)
  lock : Mutex.t;
      (* Serialises metric updates, sequence stamping and sink delivery.
         Worker domains share the pool's handle, so everything the hooks
         mutate is either under this lock or domain-local (see [tls]). *)
  tls : tls Domain.DLS.key;
}

(* Context and the open-span stack are {e domain-local}: a worker domain
   evaluating one document must not see (or clobber) the context another
   domain installed — operation attribution would bleed across domains
   otherwise.  Single-domain behaviour is unchanged: the main domain's
   slot acts exactly like the old mutable fields. *)
and tls = { mutable ctx : Event.ctx option; mutable span_stack : int list }

let record_size_hist = "record_size_bytes"
let split_fill_hist = "split_fill_factor"
let proxy_chain_hist = "proxy_chain_len"
let span_ms_hist = "span_ms"

let create ?sink () =
  let metrics = Metrics.create () in
  Metrics.register_histogram metrics record_size_hist
    ~edges:[| 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768. |];
  Metrics.register_histogram metrics split_fill_hist
    ~edges:[| 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 1.0 |];
  Metrics.register_histogram metrics proxy_chain_hist ~edges:[| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |];
  Metrics.register_histogram metrics span_ms_hist
    ~edges:[| 0.1; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000.; 30000.; 120000. |];
  {
    sink;
    subscribers = [];
    metrics;
    now = (fun () -> 0.);
    seq = 0;
    next_span = 0;
    lock = Mutex.create ();
    tls = Domain.DLS.new_key (fun () -> { ctx = None; span_stack = [] });
  }

let metrics t = t.metrics
let sink t = t.sink
let set_clock t now = t.now <- now
let now_ms t = t.now ()
let tls t = Domain.DLS.get t.tls

let context t = (tls t).ctx

let set_context t ctx = (tls t).ctx <- ctx

let with_context t ?doc ~phase f =
  let slot = tls t in
  let saved = slot.ctx in
  slot.ctx <- Some { Event.doc; phase };
  Fun.protect ~finally:(fun () -> slot.ctx <- saved) f

let subscribe t f = t.subscribers <- f :: t.subscribers

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Subscribers run under the handle's lock (they are part of delivery);
   they must not call back into [emit]/[incr]/[observe] on this handle. *)
let deliver t event =
  (match t.sink with None -> () | Some sink -> Sink.emit sink event);
  List.iter (fun f -> f event) (List.rev t.subscribers)

let emit t kind =
  locked t (fun () ->
      Metrics.incr t.metrics ("ev." ^ Event.type_name kind);
      if t.sink <> None || t.subscribers <> [] then begin
        t.seq <- t.seq + 1;
        deliver t { Event.seq = t.seq; at_ms = t.now (); kind; ctx = (tls t).ctx }
      end)

let incr ?by t name = locked t (fun () -> Metrics.incr ?by t.metrics name)
let observe t name v = locked t (fun () -> Metrics.observe t.metrics name v)

(* Spans nest through an explicit (domain-local) stack of ids: [span]
   pushes a fresh id for the dynamic extent of [f], so any span (or
   [child_span]) opened inside on the same domain sees it as the parent.
   The event fires at close, carrying the id/parent/depth triple the
   flamegraph exporter rebuilds stacks from. *)
let current_span t = match (tls t).span_stack with [] -> 0 | id :: _ -> id

let fresh_span_id t =
  locked t (fun () ->
      t.next_span <- t.next_span + 1;
      t.next_span)

let finish_span t name ~id ~parent ~depth ~dur_ms =
  incr t ("span." ^ name);
  observe t span_ms_hist dur_ms;
  emit t (Event.Span { name; dur_ms; id; parent; depth })

let span t name f =
  let t0 = t.now () in
  let slot = tls t in
  let parent = current_span t in
  let depth = List.length slot.span_stack in
  let id = fresh_span_id t in
  slot.span_stack <- id :: slot.span_stack;
  let finish () =
    slot.span_stack <- (match slot.span_stack with _ :: rest -> rest | [] -> []);
    finish_span t name ~id ~parent ~depth ~dur_ms:(t.now () -. t0)
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let child_span t name ~dur_ms =
  let parent = current_span t in
  let depth = List.length (tls t).span_stack in
  let id = fresh_span_id t in
  finish_span t name ~id ~parent ~depth ~dur_ms

let events t = match t.sink with None -> [] | Some s -> Sink.events s
let emitted t = match t.sink with None -> 0 | Some s -> Sink.emitted s
let flush t = match t.sink with None -> () | Some s -> Sink.flush s
let close t = match t.sink with None -> () | Some s -> Sink.close s
