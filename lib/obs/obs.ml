type t = {
  sink : Sink.t option;
  metrics : Metrics.t;
  mutable now : unit -> float;
  mutable seq : int;
  mutable next_span : int;  (* id generator; 0 is reserved for "no parent" *)
  mutable span_stack : int list;  (* ids of the open spans, innermost first *)
  mutable ctx : Event.ctx option;
}

let record_size_hist = "record_size_bytes"
let split_fill_hist = "split_fill_factor"
let proxy_chain_hist = "proxy_chain_len"
let span_ms_hist = "span_ms"

let create ?sink () =
  let metrics = Metrics.create () in
  Metrics.register_histogram metrics record_size_hist
    ~edges:[| 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768. |];
  Metrics.register_histogram metrics split_fill_hist
    ~edges:[| 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 1.0 |];
  Metrics.register_histogram metrics proxy_chain_hist ~edges:[| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |];
  Metrics.register_histogram metrics span_ms_hist
    ~edges:[| 0.1; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000.; 30000.; 120000. |];
  {
    sink;
    metrics;
    now = (fun () -> 0.);
    seq = 0;
    next_span = 0;
    span_stack = [];
    ctx = None;
  }

let metrics t = t.metrics
let sink t = t.sink
let set_clock t now = t.now <- now
let now_ms t = t.now ()

let context t = t.ctx

let set_context t ctx = t.ctx <- ctx

let with_context t ?doc ~phase f =
  let saved = t.ctx in
  t.ctx <- Some { Event.doc; phase };
  Fun.protect ~finally:(fun () -> t.ctx <- saved) f

let emit t kind =
  Metrics.incr t.metrics ("ev." ^ Event.type_name kind);
  match t.sink with
  | None -> ()
  | Some sink ->
    t.seq <- t.seq + 1;
    Sink.emit sink { Event.seq = t.seq; at_ms = t.now (); kind; ctx = t.ctx }

let incr ?by t name = Metrics.incr ?by t.metrics name
let observe t name v = Metrics.observe t.metrics name v

(* Spans nest through an explicit stack of ids: [span] pushes a fresh id
   for the dynamic extent of [f], so any span (or [child_span]) opened
   inside sees it as the parent.  The event fires at close, carrying the
   id/parent/depth triple the flamegraph exporter rebuilds stacks from. *)
let current_span t = match t.span_stack with [] -> 0 | id :: _ -> id

let fresh_span_id t =
  t.next_span <- t.next_span + 1;
  t.next_span

let finish_span t name ~id ~parent ~depth ~dur_ms =
  incr t ("span." ^ name);
  Metrics.observe t.metrics span_ms_hist dur_ms;
  emit t (Event.Span { name; dur_ms; id; parent; depth })

let span t name f =
  let t0 = t.now () in
  let parent = current_span t in
  let depth = List.length t.span_stack in
  let id = fresh_span_id t in
  t.span_stack <- id :: t.span_stack;
  let finish () =
    t.span_stack <- (match t.span_stack with _ :: rest -> rest | [] -> []);
    finish_span t name ~id ~parent ~depth ~dur_ms:(t.now () -. t0)
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let child_span t name ~dur_ms =
  let parent = current_span t in
  let depth = List.length t.span_stack in
  let id = fresh_span_id t in
  finish_span t name ~id ~parent ~depth ~dur_ms

let events t = match t.sink with None -> [] | Some s -> Sink.events s
let emitted t = match t.sink with None -> 0 | Some s -> Sink.emitted s
let close t = match t.sink with None -> () | Some s -> Sink.close s
