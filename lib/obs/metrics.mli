(** Metrics registry: named counters and fixed-bucket histograms.

    Buckets are {e upper-inclusive}: an observation [v] falls into the
    first bucket whose edge [e] satisfies [v <= e]; observations above the
    last edge land in an implicit overflow bucket, so a histogram with [n]
    edges has [n + 1] counts.  Edges are fixed at registration time —
    there is no dynamic resizing, keeping {!observe} allocation-free.

    All operations are O(1) apart from a hash lookup by name;
    instrumentation call sites are expected to be guarded by the presence
    of an {!Obs.t} handle, so an uninstrumented store never reaches this
    module. *)

type t

val create : unit -> t

(** [incr t name] bumps counter [name] (creating it at 0 first). *)
val incr : ?by:int -> t -> string -> unit

(** Current counter value; 0 when never incremented. *)
val counter : t -> string -> int

(** [register_histogram t name ~edges] declares a histogram.  Idempotent
    when the edges match; re-registering with different edges raises
    [Invalid_argument].  Edges must be finite and strictly increasing. *)
val register_histogram : t -> string -> edges:float array -> unit

(** [observe t name v] records [v].  An unregistered name is first
    registered with power-of-two byte-size edges (1 .. 65536).  Non-finite
    values (NaN, ±∞) are dropped — they would otherwise poison the sum and
    make {!quantile} return NaN — so [histogram]'s [n] counts only finite
    observations. *)
val observe : t -> string -> float -> unit

(** [(edges, counts, sum, n)] of a registered histogram: [counts] has
    [Array.length edges + 1] cells (the last is the overflow bucket). *)
val histogram : t -> string -> (float array * int array * float * int) option

(** [quantile t name q] approximates the [q]-quantile ([0. <= q <= 1.]) of
    the observations recorded into histogram [name]: the bucket holding
    the rank-[q] observation is found from the counts, then the value is
    interpolated linearly within it (the first bucket's lower edge is
    taken as 0; observations in the overflow bucket report the last edge,
    so the estimate saturates there).  [None] when the histogram does not
    exist or is empty — never NaN: edges are finite by registration and
    non-finite observations are dropped by {!observe}.  Raises
    [Invalid_argument] if [q] is outside [0, 1]. *)
val quantile : t -> string -> float -> float option

(** Names of all registered counters (resp. histograms), sorted. *)
val counter_names : t -> string list

val histogram_names : t -> string list

(** Zero every counter and histogram, keeping registrations. *)
val reset : t -> unit

(** Snapshot as
    [{"counters": {..}, "histograms": {name: {"edges": [..], "counts":
    [..], "sum": s, "count": n}}}]. *)
val to_json : t -> Json.t

(** Human-readable report: counters in a column, histograms as bucket
    tables with proportional bars. *)
val pp : Format.formatter -> t -> unit
