type histogram = {
  edges : float array;
  counts : int array;  (* length = Array.length edges + 1; last = overflow *)
  mutable sum : float;
  mutable n : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let check_edges edges =
  let ok = ref (Array.length edges > 0) in
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then ok := false;
      if i > 0 && e <= edges.(i - 1) then ok := false)
    edges;
  if not !ok then
    invalid_arg "Metrics.register_histogram: edges must be finite and strictly increasing"

let register_histogram t name ~edges =
  match Hashtbl.find_opt t.histograms name with
  | Some h ->
    if h.edges <> edges then
      invalid_arg (Printf.sprintf "Metrics.register_histogram: %S re-registered with different edges" name)
  | None ->
    check_edges edges;
    Hashtbl.replace t.histograms name
      { edges; counts = Array.make (Array.length edges + 1) 0; sum = 0.; n = 0 }

let default_edges = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768.; 65536. |]

(* First bucket whose (upper-inclusive) edge admits [v]; the overflow
   bucket when none does. *)
let bucket_of edges v =
  let n = Array.length edges in
  let rec go lo hi =
    (* Invariant: every edge below [lo] is < v; bucket is in [lo, hi]. *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if v <= edges.(mid) then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let observe t name v =
  (* A NaN or infinite observation would poison [sum] (and, for NaN, land
     in an arbitrary bucket since every comparison is false); drop it so
     quantiles and means stay finite whatever an instrumentation site
     feeds in. *)
  if Float.is_finite v then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
        register_histogram t name ~edges:default_edges;
        Hashtbl.find t.histograms name
    in
    let b = bucket_of h.edges v in
    h.counts.(b) <- h.counts.(b) + 1;
    h.sum <- h.sum +. v;
    h.n <- h.n + 1
  end

let histogram t name =
  Hashtbl.find_opt t.histograms name
  |> Option.map (fun h -> (Array.copy h.edges, Array.copy h.counts, h.sum, h.n))

(* The true quantile is only known up to the bucket; interpolate linearly
   inside it, taking the first bucket's lower edge as 0 and collapsing the
   unbounded overflow bucket to the last edge. *)
let quantile t name q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Metrics.quantile: q must be in [0, 1]";
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h when h.n = 0 -> None
  | Some h ->
    let rank = q *. float_of_int h.n in
    let nbuckets = Array.length h.counts in
    let rec go i cum =
      if i >= nbuckets then Some h.edges.(Array.length h.edges - 1)
      else begin
        let cum' = cum +. float_of_int h.counts.(i) in
        if cum' >= rank && h.counts.(i) > 0 then
          if i >= Array.length h.edges then Some h.edges.(Array.length h.edges - 1)
          else begin
            let lo = if i = 0 then 0. else h.edges.(i - 1) in
            let hi = h.edges.(i) in
            let frac = (rank -. cum) /. float_of_int h.counts.(i) in
            Some (lo +. (frac *. (hi -. lo)))
          end
        else go (i + 1) cum'
      end
    in
    go 0 0.

let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare
let counter_names t = sorted_keys t.counters
let histogram_names t = sorted_keys t.histograms

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.sum <- 0.;
      h.n <- 0)
    t.histograms

let to_json t =
  let counters =
    List.map (fun name -> (name, Json.Int (counter t name))) (counter_names t)
  in
  let histograms =
    List.map
      (fun name ->
        let h = Hashtbl.find t.histograms name in
        ( name,
          Json.Obj
            [
              ("edges", Json.List (Array.to_list h.edges |> List.map (fun e -> Json.Float e)));
              ("counts", Json.List (Array.to_list h.counts |> List.map (fun c -> Json.Int c)));
              ("sum", Json.Float h.sum);
              ("count", Json.Int h.n);
            ] ))
      (histogram_names t)
  in
  Json.Obj [ ("counters", Json.Obj counters); ("histograms", Json.Obj histograms) ]

let edge_label e =
  if Float.is_integer e && Float.abs e < 1e15 then Printf.sprintf "%.0f" e
  else Printf.sprintf "%g" e

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  (match counter_names t with
  | [] -> ()
  | names ->
    Format.fprintf ppf "counters:@,";
    List.iter (fun name -> Format.fprintf ppf "  %-28s %10d@," name (counter t name)) names);
  List.iter
    (fun name ->
      let h = Hashtbl.find t.histograms name in
      let mean = if h.n = 0 then 0. else h.sum /. float_of_int h.n in
      Format.fprintf ppf "%s (n=%d, mean=%.2f):@," name h.n mean;
      let max_count = Array.fold_left max 1 h.counts in
      let bar c = String.make (c * 40 / max_count) '#' in
      Array.iteri
        (fun i c ->
          if i < Array.length h.edges then
            Format.fprintf ppf "  <=%-10s %8d |%s@," (edge_label h.edges.(i)) c (bar c)
          else if c > 0 then
            Format.fprintf ppf "  > %-10s %8d |%s@," (edge_label h.edges.(Array.length h.edges - 1))
              c (bar c))
        h.counts)
    (histogram_names t);
  Format.fprintf ppf "@]"
