(** The observability handle threaded through the storage engine.

    An [Obs.t] bundles an optional trace {!Sink.t}, a {!Metrics.t}
    registry, and a clock.  Storage layers hold an [Obs.t option]; every
    instrumentation hook is guarded by one [match] on that option, so a
    store created without a handle allocates nothing extra on its hot
    paths.

    The clock is the {e simulated} I/O clock: when the handle is attached
    to a disk (see [Natix_store.Disk.set_obs]) it reads the disk's
    accumulated [Io_stats.sim_ms], so event timestamps and {!span}
    durations are commensurable with the paper's cost model, not with
    wall time. *)

type t

(** [create ?sink ()] makes a handle.  Without [sink], events are still
    counted into the metrics registry (one ["ev.<type>"] counter per
    event type) but not retained.  The standard engine histograms
    ([record_size_bytes], [split_fill_factor], [proxy_chain_len]) are
    pre-registered. *)
val create : ?sink:Sink.t -> unit -> t

val metrics : t -> Metrics.t
val sink : t -> Sink.t option

(** Install the simulated-millisecond clock (done by the disk layer). *)
val set_clock : t -> (unit -> float) -> unit

val now_ms : t -> float

(** Stamp (sequence number + clock) and deliver an event: bump its
    ["ev.<type>"] counter, then forward it to the sink, if any. *)
val emit : t -> Event.kind -> unit

(** Counter / histogram shorthands on {!metrics}. *)
val incr : ?by:int -> t -> string -> unit

val observe : t -> string -> float -> unit

(** [span t name f] runs [f] and emits a [Span] event whose duration is
    the simulated milliseconds elapsed inside [f] (also observed into the
    ["span_ms.<name>"] counterpart via [incr "span.<name>"]).  The event
    is emitted even when [f] raises. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** Events retained by the sink (ring sinks only); [] without a sink. *)
val events : t -> Event.t list

(** Total events emitted so far. *)
val emitted : t -> int

(** Close the sink (flushes JSONL files). *)
val close : t -> unit

(** Names of the pre-registered histograms. *)
val record_size_hist : string

val split_fill_hist : string
val proxy_chain_hist : string
