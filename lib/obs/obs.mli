(** The observability handle threaded through the storage engine.

    An [Obs.t] bundles an optional trace {!Sink.t}, a {!Metrics.t}
    registry, and a clock.  Storage layers hold an [Obs.t option]; every
    instrumentation hook is guarded by one [match] on that option, so a
    store created without a handle allocates nothing extra on its hot
    paths.

    The clock is the {e simulated} I/O clock: when the handle is attached
    to a disk (see [Natix_store.Disk.set_obs]) it reads the disk's
    accumulated [Io_stats.sim_ms], so event timestamps and {!span}
    durations are commensurable with the paper's cost model, not with
    wall time.

    {b Domain safety.}  One handle may be shared by several worker
    domains (the latch-striped buffer pool emits through the store's
    handle from whichever domain fixes a page).  Metric updates, sequence
    stamping and sink delivery are serialised by an internal mutex, while
    the operation context ({!with_context}) and the open-span stack are
    {e domain-local} — each domain attributes its own events, with no
    cross-domain bleed.  Single-domain behaviour is unchanged. *)

type t

(** [create ?sink ()] makes a handle.  Without [sink], events are still
    counted into the metrics registry (one ["ev.<type>"] counter per
    event type) but not retained.  The standard engine histograms
    ([record_size_bytes], [split_fill_factor], [proxy_chain_len]) are
    pre-registered. *)
val create : ?sink:Sink.t -> unit -> t

val metrics : t -> Metrics.t
val sink : t -> Sink.t option

(** [subscribe t f] registers an in-process consumer: every event emitted
    from now on is also handed to [f], in subscription order, {e after}
    the sink.  Events are constructed (and sequence-stamped) whenever a
    sink or at least one subscriber is present.  [f] runs under the
    handle's delivery lock — it must be fast and must not call back into
    this handle ({!emit}/{!incr}/{!observe}/{!span}).  The monitoring
    layer ([Natix_mon]) is the intended consumer.  Subscriptions cannot
    be removed; they live as long as the handle. *)
val subscribe : t -> (Event.t -> unit) -> unit

(** {2 Operation attribution}

    Events emitted while a context is installed carry it (see
    {!Event.ctx}); the page-heat profiler uses it to attribute I/O to
    (document, phase).  {!with_context} scopes dynamically and restores
    the previous context on exit (also on exceptions); lazy consumers that
    outlive the scope should re-install it around each pull via
    {!set_context}/{!context}. *)

val context : t -> Event.ctx option

val set_context : t -> Event.ctx option -> unit

val with_context : t -> ?doc:string -> phase:string -> (unit -> 'a) -> 'a

(** Install the simulated-millisecond clock (done by the disk layer). *)
val set_clock : t -> (unit -> float) -> unit

val now_ms : t -> float

(** Stamp (sequence number + clock) and deliver an event: bump its
    ["ev.<type>"] counter, then forward it to the sink, if any. *)
val emit : t -> Event.kind -> unit

(** Counter / histogram shorthands on {!metrics}. *)
val incr : ?by:int -> t -> string -> unit

val observe : t -> string -> float -> unit

(** [span t name f] runs [f] and emits a [Span] event whose duration is
    the simulated milliseconds elapsed inside [f] (also bumps the
    ["span.<name>"] counter and observes the duration into the
    [span_ms] histogram).  Spans nest: the event carries a per-handle id,
    the id of the enclosing open span and the nesting depth, so folded
    stacks can be rebuilt from the stream.  The event is emitted even when
    [f] raises. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** [child_span t name ~dur_ms] emits a synthetic closed span as a child
    of the innermost open span, with an externally measured duration —
    used by EXPLAIN ANALYZE to report per-operator self times of a lazy
    pipeline whose operator executions interleave and therefore cannot be
    wrapped in {!span} individually. *)
val child_span : t -> string -> dur_ms:float -> unit

(** Events retained by the sink (ring sinks only); [] without a sink. *)
val events : t -> Event.t list

(** Total events emitted so far. *)
val emitted : t -> int

(** Flush the sink's buffered output (see {!Sink.flush}); called by the
    store at every durable checkpoint and on close, so JSONL traces
    survive a crash up to the last checkpoint. *)
val flush : t -> unit

(** Close the sink (flushes JSONL files). *)
val close : t -> unit

(** Names of the pre-registered histograms. *)
val record_size_hist : string

val split_fill_hist : string
val proxy_chain_hist : string
val span_ms_hist : string
