type ring = {
  capacity : int;
  items : Event.t option array;
  mutable next : int;  (* slot for the next write *)
  mutable stored : int;  (* total ever written *)
}

type t =
  | Ring of ring
  | Jsonl of { oc : out_channel; buf : Buffer.t; mutable count : int }
  | Console of { ppf : Format.formatter; mutable count : int }
  | Callback of { f : Event.t -> unit; mutable count : int }
  | Multi of t list

let ring ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  Ring { capacity; items = Array.make capacity None; next = 0; stored = 0 }

let jsonl path = Jsonl { oc = open_out path; buf = Buffer.create 256; count = 0 }
let console ppf = Console { ppf; count = 0 }
let callback f = Callback { f; count = 0 }
let multi sinks = Multi sinks

let rec emit t event =
  match t with
  | Ring r ->
    r.items.(r.next) <- Some event;
    r.next <- (r.next + 1) mod r.capacity;
    r.stored <- r.stored + 1
  | Jsonl j ->
    Buffer.clear j.buf;
    Json.to_buffer j.buf (Event.to_json event);
    Buffer.add_char j.buf '\n';
    Buffer.output_buffer j.oc j.buf;
    j.count <- j.count + 1
  | Console c ->
    Format.fprintf c.ppf "%a@." Event.pp event;
    c.count <- c.count + 1
  | Callback c ->
    c.f event;
    c.count <- c.count + 1
  | Multi sinks -> List.iter (fun s -> emit s event) sinks

let rec events = function
  | Ring r ->
    let n = min r.stored r.capacity in
    let first = (r.next - n + r.capacity * 2) mod r.capacity in
    List.init n (fun i ->
        match r.items.((first + i) mod r.capacity) with
        | Some e -> e
        | None -> assert false)
  | Jsonl _ | Console _ | Callback _ -> []
  | Multi sinks -> List.concat_map events sinks

let rec emitted = function
  | Ring r -> r.stored
  | Jsonl j -> j.count
  | Console c -> c.count
  | Callback c -> c.count
  | Multi sinks -> List.fold_left (fun acc s -> acc + emitted s) 0 sinks

let rec write_json t v =
  match t with
  | Jsonl j ->
    Buffer.clear j.buf;
    Json.to_buffer j.buf v;
    Buffer.add_char j.buf '\n';
    Buffer.output_buffer j.oc j.buf
  | Ring _ | Console _ | Callback _ -> ()
  | Multi sinks -> List.iter (fun s -> write_json s v) sinks

let rec flush = function
  | Jsonl j -> Stdlib.flush j.oc
  | Console c -> Format.pp_print_flush c.ppf ()
  | Ring _ | Callback _ -> ()
  | Multi sinks -> List.iter flush sinks

let rec close = function
  | Ring _ -> ()
  | Jsonl j -> close_out j.oc
  | Console _ | Callback _ -> ()
  | Multi sinks -> List.iter close sinks
