(** Minimal JSON values, printing and parsing.

    The repository cannot assume a JSON library is installed, and the
    observability subsystem needs only a small dialect: objects, arrays,
    strings, integers, floats, booleans and null.  The printer escapes
    per RFC 8259; the parser accepts exactly what the printer emits (plus
    insignificant whitespace), which is what the JSONL round-trip tests
    and the trace inspector need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [to_buffer buf v] appends the serialised form of [v] to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

(** [parse s] parses one JSON value spanning the whole string.
    @raise Failure with a position-annotated message on malformed input. *)
val parse : string -> t

(** [member name v] is the field [name] of object [v], if present. *)
val member : string -> t -> t option

(** Printing helper for floats: finite values in shortest round-trip
    form, non-finite values as [null] (JSON has no inf/nan). *)
val float_repr : float -> string
