(** Trace sinks: where emitted events go.

    Three concrete sinks are provided, matching the three consumption
    modes of a trace:

    - {!ring}: a bounded in-memory ring buffer keeping the most recent
      events, for tests and post-mortem inspection with no I/O;
    - {!jsonl}: one JSON object per line appended to a file, for offline
      analysis and the CLI inspector;
    - {!console}: a human-readable line per event on a formatter, for
      interactive tracing.

    {!multi} fans one event out to several sinks. *)

type t

(** [ring ~capacity ()] keeps the last [capacity] events (default 4096). *)
val ring : ?capacity:int -> unit -> t

(** [jsonl path] truncates/creates [path] and appends one JSON line per
    event.  {!close} flushes and closes the file. *)
val jsonl : string -> t

val console : Format.formatter -> t

(** [callback f] hands each event to [f] as it is emitted; nothing is
    retained.  Used by in-process consumers (the profiler) that want the
    stream without buffering it. *)
val callback : (Event.t -> unit) -> t

val multi : t list -> t
val emit : t -> Event.t -> unit

(** Events currently held, oldest first.  Ring sinks report their
    contents; a [multi] concatenates its children's; file and console
    sinks report []. *)
val events : t -> Event.t list

(** Number of events ever emitted to this sink (before any ring
    truncation). *)
val emitted : t -> int

(** [write_json t v] appends a raw JSON line to JSONL sinks (e.g. a final
    metrics snapshot after the event stream); ignored by other sinks. *)
val write_json : t -> Json.t -> unit

(** Push buffered output to the OS: JSONL sinks flush their channel,
    console sinks their formatter; ring and callback sinks hold nothing.

    {b Buffering contract.}  JSONL event lines are buffered in the
    [out_channel]; a crash of the process (or a simulated
    [Faulty_disk.Crash]) loses whatever has not been flushed.  The store
    calls [flush] at every durable checkpoint and on close, so a trace or
    flight-recorder file on disk is complete up to the last checkpoint,
    with every line valid JSON. *)
val flush : t -> unit

val close : t -> unit
