(** Structured trace events.

    One constructor per instrumented operation of the storage engine, from
    raw page I/O up to tree-store splits.  Events are cheap immediate
    records; they are only constructed when an {!Obs.t} handle is installed,
    so uninstrumented stores pay a single [match] per hook.

    Timestamps ([at_ms]) are read from the store's {e simulated} I/O clock
    (the [Io_stats.sim_ms] accumulator of the underlying disk), so a trace
    lines up with the paper's cost model rather than with wall time. *)

open Natix_util

(** Mirror of [Split_matrix.behaviour]; duplicated here so the obs library
    stays below the core in the dependency order. *)
type decision = Cluster | Standalone | Other

type btree_op = Bt_read | Bt_write | Bt_alloc

(** Operation attribution stamped on events while an {!Obs.with_context}
    scope is active: which document (if any) and which operation phase
    ("load", "query", "checkpoint", ...) the engine was serving when the
    event fired.  The page-heat profiler groups I/O by these labels. *)
type ctx = { doc : string option; phase : string }

type kind =
  | Io of { page : int; write : bool; sequential : bool }
      (** One physical page transfer charged to the I/O model. *)
  | Page_fix of { page : int; hit : bool }
      (** Buffer-pool fix; [hit = false] means the frame was read (or, for
          freshly allocated pages, materialised) on demand. *)
  | Page_evict of { page : int; dirty : bool }
  | Page_flush of { page : int }  (** Dirty frame written back. *)
  | Record_alloc of { rid : Rid.t; bytes : int }
  | Record_relocate of { rid : Rid.t; target : Rid.t; bytes : int }
      (** A record moved behind a tombstone; [rid] keeps addressing it. *)
  | Record_free of { rid : Rid.t }
  | Split of { rid : Rid.t; decision : decision; fill : float; record_bytes : int }
      (** Tree-store record split: the overflowing record, the Split-Matrix
          behaviour of the insertion that triggered the overflow, the fill
          factor of the record's page at split time, and the (oversized)
          in-memory record size. *)
  | Merge of { rid : Rid.t; absorbed : Rid.t }
      (** Dynamic re-clustering: [absorbed] was inlined into [rid]. *)
  | Proxy_hop of { rid : Rid.t; chain : int }
      (** A proxy dereference during logical navigation; [chain] is the
          number of consecutive record fetches needed to resolve the
          logical child list position (> 1 through scaffolding groups). *)
  | Btree_node of { rid : Rid.t; op : btree_op; leaf : bool }
  | Span of { name : string; dur_ms : float; id : int; parent : int; depth : int }
      (** A timed region, measured on the simulated clock.  Spans nest:
          [id] is unique per handle, [parent] is the id of the enclosing
          open span (0 at top level) and [depth] its nesting depth (0 at
          top level).  The event is emitted when the region {e closes}, so
          its start is [at_ms -. dur_ms] and children precede parents in
          the stream. *)
  | Checksum_fail of { page : int }
      (** A page trailer failed verification on read; the read raises
          [Disk.Bad_page] right after this event. *)
  | Read_retry of { page : int; attempt : int }
      (** The buffer pool retrying a transiently failed page read. *)
  | Read_ahead of { first : int; pages : int }
      (** The buffer pool prefetched a run of [pages] contiguous pages
          starting at [first] after detecting a sequential miss pattern. *)
  | Wal_append of { lsn : int; page : int; bytes : int }
      (** An update record (before+after image) appended to the
          write-ahead log. *)
  | Wal_commit of { lsn : int; pages : int }
      (** A checkpoint committed: [pages] dirty pages were flushed under
          WAL protection and the log was truncated. *)
  | Wal_fsync of { lsn : int; records : int }
      (** A log fsync made [records] pending records durable up to
          [lsn]. *)
  | Wal_torn of { offset : int; dropped : int }
      (** Recovery found a torn or corrupt log tail at [offset] and
          truncated [dropped] bytes. *)
  | Recovery_redo of { page : int }
      (** Recovery replayed a logged after-image onto this page. *)
  | Recovery_undo of { page : int }
      (** Recovery restored this page from its logged before-image. *)
  | Recovery_done of { undone : int; torn_bytes : int }
      (** Recovery finished: pages restored, and bytes of torn log tail
          discarded. *)
  | Budget_exceeded of { doc : string; resource : string; used : float; limit : float }
      (** The monitoring layer's per-document resource accounting found a
          windowed figure ([resource] is ["reads"] or ["sim_ms"]) above its
          soft budget.  Informational: nothing is throttled here — the
          admission-control consumer decides what to do. *)

type t = { seq : int; at_ms : float; kind : kind; ctx : ctx option }

val decision_name : decision -> string

(** Stable snake_case tag, also used as the JSON ["type"] field and as the
    per-event-type metrics counter suffix. *)
val type_name : kind -> string

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
