open Natix_util

type decision = Cluster | Standalone | Other

type btree_op = Bt_read | Bt_write | Bt_alloc

type ctx = { doc : string option; phase : string }

type kind =
  | Io of { page : int; write : bool; sequential : bool }
  | Page_fix of { page : int; hit : bool }
  | Page_evict of { page : int; dirty : bool }
  | Page_flush of { page : int }
  | Record_alloc of { rid : Rid.t; bytes : int }
  | Record_relocate of { rid : Rid.t; target : Rid.t; bytes : int }
  | Record_free of { rid : Rid.t }
  | Split of { rid : Rid.t; decision : decision; fill : float; record_bytes : int }
  | Merge of { rid : Rid.t; absorbed : Rid.t }
  | Proxy_hop of { rid : Rid.t; chain : int }
  | Btree_node of { rid : Rid.t; op : btree_op; leaf : bool }
  | Span of { name : string; dur_ms : float; id : int; parent : int; depth : int }
  | Checksum_fail of { page : int }
  | Read_retry of { page : int; attempt : int }
  | Read_ahead of { first : int; pages : int }
  | Wal_append of { lsn : int; page : int; bytes : int }
  | Wal_commit of { lsn : int; pages : int }
  | Wal_fsync of { lsn : int; records : int }
  | Wal_torn of { offset : int; dropped : int }
  | Recovery_redo of { page : int }
  | Recovery_undo of { page : int }
  | Recovery_done of { undone : int; torn_bytes : int }
  | Budget_exceeded of { doc : string; resource : string; used : float; limit : float }

type t = { seq : int; at_ms : float; kind : kind; ctx : ctx option }

let decision_name = function
  | Cluster -> "cluster"
  | Standalone -> "standalone"
  | Other -> "other"

let btree_op_name = function
  | Bt_read -> "read"
  | Bt_write -> "write"
  | Bt_alloc -> "alloc"

let type_name = function
  | Io _ -> "io"
  | Page_fix _ -> "page_fix"
  | Page_evict _ -> "page_evict"
  | Page_flush _ -> "page_flush"
  | Record_alloc _ -> "record_alloc"
  | Record_relocate _ -> "record_relocate"
  | Record_free _ -> "record_free"
  | Split _ -> "split"
  | Merge _ -> "merge"
  | Proxy_hop _ -> "proxy_hop"
  | Btree_node _ -> "btree_node"
  | Span _ -> "span"
  | Checksum_fail _ -> "checksum_fail"
  | Read_retry _ -> "read_retry"
  | Read_ahead _ -> "read_ahead"
  | Wal_append _ -> "wal_append"
  | Wal_commit _ -> "wal_commit"
  | Wal_fsync _ -> "wal_fsync"
  | Wal_torn _ -> "wal_torn"
  | Recovery_redo _ -> "recovery_redo"
  | Recovery_undo _ -> "recovery_undo"
  | Recovery_done _ -> "recovery_done"
  | Budget_exceeded _ -> "budget_exceeded"

let rid_json rid = Json.String (Rid.to_string rid)

let kind_fields = function
  | Io { page; write; sequential } ->
    [ ("page", Json.Int page); ("write", Json.Bool write); ("sequential", Json.Bool sequential) ]
  | Page_fix { page; hit } -> [ ("page", Json.Int page); ("hit", Json.Bool hit) ]
  | Page_evict { page; dirty } -> [ ("page", Json.Int page); ("dirty", Json.Bool dirty) ]
  | Page_flush { page } -> [ ("page", Json.Int page) ]
  | Record_alloc { rid; bytes } -> [ ("rid", rid_json rid); ("bytes", Json.Int bytes) ]
  | Record_relocate { rid; target; bytes } ->
    [ ("rid", rid_json rid); ("target", rid_json target); ("bytes", Json.Int bytes) ]
  | Record_free { rid } -> [ ("rid", rid_json rid) ]
  | Split { rid; decision; fill; record_bytes } ->
    [
      ("rid", rid_json rid);
      ("decision", Json.String (decision_name decision));
      ("fill", Json.Float fill);
      ("record_bytes", Json.Int record_bytes);
    ]
  | Merge { rid; absorbed } -> [ ("rid", rid_json rid); ("absorbed", rid_json absorbed) ]
  | Proxy_hop { rid; chain } -> [ ("rid", rid_json rid); ("chain", Json.Int chain) ]
  | Btree_node { rid; op; leaf } ->
    [ ("rid", rid_json rid); ("op", Json.String (btree_op_name op)); ("leaf", Json.Bool leaf) ]
  | Span { name; dur_ms; id; parent; depth } ->
    [
      ("name", Json.String name);
      ("dur_ms", Json.Float dur_ms);
      ("id", Json.Int id);
      ("parent", Json.Int parent);
      ("depth", Json.Int depth);
    ]
  | Checksum_fail { page } -> [ ("page", Json.Int page) ]
  | Read_retry { page; attempt } -> [ ("page", Json.Int page); ("attempt", Json.Int attempt) ]
  | Read_ahead { first; pages } -> [ ("first", Json.Int first); ("pages", Json.Int pages) ]
  | Wal_append { lsn; page; bytes } ->
    [ ("lsn", Json.Int lsn); ("page", Json.Int page); ("bytes", Json.Int bytes) ]
  | Wal_commit { lsn; pages } -> [ ("lsn", Json.Int lsn); ("pages", Json.Int pages) ]
  | Wal_fsync { lsn; records } -> [ ("lsn", Json.Int lsn); ("records", Json.Int records) ]
  | Wal_torn { offset; dropped } ->
    [ ("offset", Json.Int offset); ("dropped", Json.Int dropped) ]
  | Recovery_redo { page } -> [ ("page", Json.Int page) ]
  | Recovery_undo { page } -> [ ("page", Json.Int page) ]
  | Recovery_done { undone; torn_bytes } ->
    [ ("undone", Json.Int undone); ("torn_bytes", Json.Int torn_bytes) ]
  | Budget_exceeded { doc; resource; used; limit } ->
    [
      ("doc", Json.String doc);
      ("resource", Json.String resource);
      ("used", Json.Float used);
      ("limit", Json.Float limit);
    ]

let ctx_fields = function
  | None -> []
  | Some { doc; phase } -> (
    ("phase", Json.String phase)
    :: (match doc with None -> [] | Some d -> [ ("doc", Json.String d) ]))

let to_json t =
  Json.Obj
    (("seq", Json.Int t.seq)
    :: ("ms", Json.Float t.at_ms)
    :: ("type", Json.String (type_name t.kind))
    :: (kind_fields t.kind @ ctx_fields t.ctx))

let pp ppf t =
  Format.fprintf ppf "@[<h>#%-6d %9.2fms %-15s" t.seq t.at_ms (type_name t.kind);
  List.iter
    (fun (k, v) ->
      match v with
      | Json.String s -> Format.fprintf ppf " %s=%s" k s
      | v -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
    (kind_fields t.kind @ ctx_fields t.ctx);
  Format.fprintf ppf "@]"
