(** XML documents stored as flat streams (paper §1, category 1).

    The document is one serialised byte stream in a {!Blob_store}; whole-
    document reads are fast and sequential, but {e any} structural access
    requires reading and re-parsing the stream — exactly the trade-off the
    paper describes for flat files and BLOB-based storage. *)

type t

val store :
  Blob_store.t -> name:string -> Natix_xml.Xml_tree.t -> t

val name : t -> string
val blob : t -> Blob_store.blob

(** Serialized size in bytes. *)
val size : t -> int

(** Read the whole stream and parse it — the only way to reach structure. *)
val load : Blob_store.t -> t -> Natix_xml.Xml_tree.t

(** [splice_text bs t ~at text] inserts character data at a byte offset
    that falls inside character content (the caller must pick a safe
    offset); models an incremental update to the flat representation. *)
val splice_text : Blob_store.t -> t -> at:int -> string -> unit

(** Offsets (into the stream) that lie inside text content, usable as
    splice points; at most [limit] of them, deterministically spread. *)
val text_offsets : Blob_store.t -> t -> limit:int -> int list
