(** Flat-stream baseline: a large-object (BLOB) manager in the style of
    EXODUS/Starburst (paper §1 "Flat Streams", §5).

    A blob is an uninterpreted byte stream distributed over records (one
    per page region), split at {e arbitrary byte positions} — precisely the
    behaviour the paper criticises: the manager has no knowledge of the
    tree structure it stores.  Supports random-position reads, inserts and
    deletes with page-chain maintenance, so the flat representation can be
    benchmarked under the same I/O model as NATIX.

    The chunk index is kept in memory (the positional B-tree of a real
    BLOB manager is not on the measured path of any experiment). *)

open Natix_store

type t
type blob

val create : Record_manager.t -> t
val record_manager : t -> Record_manager.t

(** Store a fresh blob containing [data]. *)
val put : t -> string -> blob

(** Create an empty blob. *)
val empty : t -> blob

val length : blob -> int
val chunk_count : blob -> int

(** [read t b ~off ~len] extracts a range.
    @raise Invalid_argument if the range exceeds the blob. *)
val read : t -> blob -> off:int -> len:int -> string

val read_all : t -> blob -> string

(** [insert_at t b ~off data] splices [data] at byte position [off]
    (0 ≤ off ≤ length). *)
val insert_at : t -> blob -> off:int -> string -> unit

val append : t -> blob -> string -> unit

(** [delete_range t b ~off ~len] removes a byte range. *)
val delete_range : t -> blob -> off:int -> len:int -> unit

(** Delete all records of the blob. *)
val delete : t -> blob -> unit
