open Natix_util
open Natix_store

type chunk = { rid : Rid.t; mutable len : int }

type blob = { mutable chunks : chunk list; mutable total : int }

type t = { rm : Record_manager.t; target : int }

let create rm =
  (* Fill chunks to ~3/4 of a page so nearby inserts usually fit without
     splitting the chain. *)
  { rm; target = max 64 (Record_manager.max_len rm * 3 / 4) }

let record_manager t = t.rm

(* Cut [data] into target-sized chunk records, near the previous chunk's
   page for sequential layout. *)
let store_pieces t ?near data =
  let n = String.length data in
  let rec go pos near acc =
    if pos >= n then List.rev acc
    else begin
      let len = min t.target (n - pos) in
      let rid = Record_manager.insert t.rm ?near (String.sub data pos len) in
      go (pos + len) (Some (Rid.page rid)) ({ rid; len } :: acc)
    end
  in
  go 0 near []

let put t data = { chunks = store_pieces t data; total = String.length data }
let empty _t = { chunks = []; total = 0 }
let length b = b.total
let chunk_count b = List.length b.chunks

(* Locate [off]: returns the chunks before, the chunk containing [off]
   (with the in-chunk offset), and the rest.  When [off] equals the blob
   length the "containing" chunk is [None]. *)
let locate b off =
  let rec go before rest off =
    match rest with
    | [] -> (before, None, [])
    | c :: tail -> if off < c.len then (before, Some (c, off), tail) else go (c :: before) tail (off - c.len)
  in
  go [] b.chunks off

let read t b ~off ~len =
  if off < 0 || len < 0 || off + len > b.total then invalid_arg "Blob_store.read: bad range";
  let buf = Buffer.create len in
  let rec go chunks off remaining =
    if remaining > 0 then begin
      match chunks with
      | [] -> invalid_arg "Blob_store.read: corrupt chunk index"
      | c :: rest ->
        if off >= c.len then go rest (off - c.len) remaining
        else begin
          let take = min (c.len - off) remaining in
          Record_manager.with_record t.rm c.rid (fun body ~off:roff ~len:_ ->
              Buffer.add_subbytes buf body (roff + off) take);
          go rest 0 (remaining - take)
        end
    end
  in
  go b.chunks off len;
  Buffer.contents buf

let read_all t b = read t b ~off:0 ~len:b.total

let insert_at t b ~off data =
  if off < 0 || off > b.total then invalid_arg "Blob_store.insert_at: bad offset";
  if String.length data = 0 then ()
  else begin
    let before, containing, after = locate b off in
    (match containing with
    | None ->
      (* Append at the very end: extend the last chunk if it has room. *)
      let near = match before with { rid; _ } :: _ -> Some (Rid.page rid) | [] -> None in
      (match before with
      | last :: _ when last.len + String.length data <= t.target ->
        let old = Record_manager.read t.rm last.rid in
        Record_manager.update t.rm last.rid (old ^ data);
        last.len <- last.len + String.length data;
        b.chunks <- List.rev_append before after
      | _ ->
        let pieces = store_pieces t ?near data in
        b.chunks <- List.rev_append before (pieces @ after))
    | Some (c, inner) ->
      let old = Record_manager.read t.rm c.rid in
      let combined = String.sub old 0 inner ^ data ^ String.sub old inner (c.len - inner) in
      if String.length combined <= Record_manager.max_len t.rm then begin
        Record_manager.update t.rm c.rid combined;
        c.len <- String.length combined;
        b.chunks <- List.rev_append before (c :: after)
      end
      else begin
        (* Split at an arbitrary byte position: rewrite this chunk with the
           first target-full and spill the rest into fresh records. *)
        let keep = min t.target (String.length combined) in
        Record_manager.update t.rm c.rid (String.sub combined 0 keep);
        c.len <- keep;
        let spill =
          store_pieces t ~near:(Rid.page c.rid)
            (String.sub combined keep (String.length combined - keep))
        in
        b.chunks <- List.rev_append before ((c :: spill) @ after)
      end);
    b.total <- b.total + String.length data
  end

let append t b data = insert_at t b ~off:b.total data

let delete_range t b ~off ~len =
  if off < 0 || len < 0 || off + len > b.total then invalid_arg "Blob_store.delete_range: bad range";
  let rec go acc chunks off remaining =
    match chunks with
    | [] -> List.rev acc
    | c :: rest ->
      if remaining = 0 then List.rev_append acc chunks
      else if off >= c.len then go (c :: acc) rest (off - c.len) remaining
      else begin
        let cut = min (c.len - off) remaining in
        if cut = c.len then begin
          (* whole chunk disappears *)
          Record_manager.delete t.rm c.rid;
          go acc rest 0 (remaining - cut)
        end
        else begin
          let old = Record_manager.read t.rm c.rid in
          let kept = String.sub old 0 off ^ String.sub old (off + cut) (c.len - off - cut) in
          Record_manager.update t.rm c.rid kept;
          c.len <- String.length kept;
          go (c :: acc) rest 0 (remaining - cut)
        end
      end
  in
  b.chunks <- go [] b.chunks off len;
  b.total <- b.total - len

let delete t b =
  List.iter (fun c -> Record_manager.delete t.rm c.rid) b.chunks;
  b.chunks <- [];
  b.total <- 0
