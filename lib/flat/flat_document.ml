open Natix_xml

type t = { name : string; blob : Blob_store.blob }

let store bs ~name xml = { name; blob = Blob_store.put bs (Xml_print.to_string xml) }
let name t = t.name
let blob t = t.blob
let size t = Blob_store.length t.blob
let load bs t = Xml_parser.parse (Blob_store.read_all bs t.blob)

let splice_text bs t ~at text = Blob_store.insert_at bs t.blob ~off:at text

let text_offsets bs t ~limit =
  (* Scan the stream once; collect offsets strictly inside runs of
     character data (between '>' and '<', at least one char in). *)
  let s = Blob_store.read_all bs t.blob in
  let n = String.length s in
  let candidates = ref [] in
  let count = ref 0 in
  let in_text = ref false in
  for i = 0 to n - 1 do
    match s.[i] with
    | '>' -> in_text := true
    | '<' -> in_text := false
    | '&' | ';' -> ()
    | _ ->
      if !in_text && i > 0 && s.[i - 1] <> '>' then begin
        incr count;
        candidates := i :: !candidates
      end
  done;
  let all = Array.of_list (List.rev !candidates) in
  let total = Array.length all in
  if total = 0 || limit <= 0 then []
  else begin
    let step = max 1 (total / limit) in
    let rec pick i acc = if i >= total || List.length acc >= limit then List.rev acc else pick (i + step) (all.(i) :: acc) in
    pick 0 []
  end
