(** Query evaluation.

    Two evaluators over the same step semantics:

    - {!eval}: the streaming planned evaluator — a lazy [Seq.t] pipeline
      following a {!Plan.t}.  Positional predicates stop pulling
      candidates at their position (so [//ACT[3]] stops walking after the
      third ACT), and steps planned as [Index_seed] are answered from the
      element index, sorted into document order.
    - {!eval_naive}: the naive baseline — cursor navigation only, strict
      per-step materialisation (every descendant step walks its whole
      subtree).  This is the reference the differential tests compare
      against.

    Both produce results in document order; on the same store they return
    byte-identical result sets. *)

open Natix_core

(** [eval store plan root] evaluates the plan from the context [root]
    (normally the document root the plan was built for).  [index] must be
    given when {!Plan.uses_index}.  Page accesses happen lazily as the
    sequence is consumed; storage-level inconsistencies detected mid-pull
    raise {!Natix_core.Error.Error} (the engine's entry points catch it
    where the sequence is forced). *)
val eval : Tree_store.t -> ?index:Element_index.t -> Plan.t -> Cursor.t -> Cursor.t Seq.t

(** [eval_naive path root] evaluates the parsed path strictly by pure
    cursor navigation. *)
val eval_naive : Ast.t -> Cursor.t -> Cursor.t list

(** {2 Instrumented evaluation}

    Per-operator measurement for EXPLAIN ANALYZE.  Every figure is taken
    from live engine counters (the disk's {!Natix_store.Io_stats}, the
    buffer pool's fix/miss totals, the obs proxy-hop counter), snapshotted
    around each pull of each operator's output. *)

type op_acc = {
  mutable rows : int;  (** results this operator yielded *)
  mutable reads : int;  (** physical page reads during its pulls *)
  mutable sim_ms : float;  (** simulated I/O milliseconds during its pulls *)
  mutable fixes : int;  (** buffer-pool fixes during its pulls *)
  mutable hits : int;  (** fixes served without a read *)
  mutable proxy_hops : int;  (** proxy dereferences (0 without an obs handle) *)
}

(** A zeroed accumulator (the differencing base for the first operator). *)
val fresh_acc : unit -> op_acc

(** [eval_instrumented store plan root] evaluates exactly like {!eval}
    but returns one accumulator per plan step alongside the sequence.
    Accumulators fill as the sequence is consumed.  Because operator
    pulls nest, each accumulator is {e cumulative} over its upstream
    operators: operator [i]'s self cost is [acc.(i) - acc.(i-1)], and
    whatever the overall measurement saw beyond the last accumulator was
    spent outside the pipeline (root fetch, planning probes). *)
val eval_instrumented :
  Tree_store.t -> ?index:Element_index.t -> Plan.t -> Cursor.t -> Cursor.t Seq.t * op_acc list

(** [matches test c] — the shared name-test semantics (exposed for
    tests). *)
val matches : Ast.test -> Cursor.t -> bool
