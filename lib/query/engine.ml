open Natix_core

type t = { store : Tree_store.t; index : Element_index.t option }

let create ?index store = { store; index }
let of_manager dm = { store = Document_manager.store dm; index = Document_manager.index dm }
let store t = t.store
let index t = t.index

let parse path =
  match Ast.parse path with
  | ast -> Ok ast
  | exception Ast.Parse_error msg -> Error (Error.Query msg)

let root_of t doc =
  match Cursor.of_document t.store doc with
  | Some root -> Ok root
  | None -> Error (Error.Storage (Printf.sprintf "no document %S" doc))

let plan_ast t ~doc ast = Plan.build t.store ?index:t.index ~doc ast

let plan t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok _ -> Ok (plan_ast t ~doc ast)

(* Scan plans are forced while the pool is in scan mode: with a lazy
   result the scan would otherwise run (and pollute the pool) after
   [with_scan] returned.  Materialising cursors is cheap — they are
   handles, not copies. *)
let run_plan t (plan : Plan.t) root =
  let seq = Exec.eval t.store ?index:t.index plan root in
  if plan.Plan.scan then
    let pool = Tree_store.buffer_pool t.store in
    Natix_store.Buffer_pool.with_scan pool (fun () -> List.to_seq (List.of_seq seq))
  else seq

let query t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok root -> (
    (* Scan plans are forced inside [run_plan], so a failure raised from
       the pipeline surfaces here; lazy plans raise at consumption. *)
    match run_plan t (plan_ast t ~doc ast) root with
    | seq -> Ok seq
    | exception Error.Error e -> Error e)

let query_naive t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok root -> Ok (List.to_seq (Exec.eval_naive ast root))

let query_all t path =
  match parse path with
  | Error e -> Error e
  | Ok ast ->
    let docs = List.sort String.compare (Tree_store.list_documents t.store) in
    Ok
      (Seq.concat_map
         (fun doc ->
           match root_of t doc with
           | Error _ -> Seq.empty
           | Ok root -> run_plan t (plan_ast t ~doc ast) root)
         (List.to_seq docs))

let explain t ~doc path =
  match plan t ~doc path with
  | Error e -> Error e
  | Ok plan -> Ok (Plan.to_string plan)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)

type op_report = {
  step : Plan.phys_step;
  rows : int;
  reads : int;
  sim_ms : float;
  fixes : int;
  hits : int;
  proxy_hops : int;
}

type analysis = {
  plan : Plan.t;
  ops : op_report list;
  setup_reads : int;
  setup_ms : float;
  total_reads : int;
  total_ms : float;
  total_fixes : int;
  total_hits : int;
  total_proxy_hops : int;
  rows : int;
}

(* Self figures from the cumulative accumulators: operator [i] minus
   operator [i-1] (see [Exec.eval_instrumented]); what the overall delta
   saw beyond the last operator is the setup cost (root fetch). *)
let reports_of_accs steps (accs : Exec.op_acc list) =
  let zero = Exec.fresh_acc () in
  let rec go prev steps accs =
    match (steps, accs) with
    | [], [] -> []
    | step :: steps, (acc : Exec.op_acc) :: accs ->
      {
        step;
        rows = acc.rows;
        reads = acc.reads - prev.Exec.reads;
        sim_ms = acc.sim_ms -. prev.Exec.sim_ms;
        fixes = acc.fixes - prev.Exec.fixes;
        hits = acc.hits - prev.Exec.hits;
        proxy_hops = acc.proxy_hops - prev.Exec.proxy_hops;
      }
      :: go acc steps accs
    | _ -> invalid_arg "Natix_query.Engine: step/accumulator mismatch"
  in
  go zero steps accs

let analyze_query t ~doc path =
  match parse path with
  | Error e -> Error e
  | Ok ast -> (
    (* Document validation happens inside [run], after the snapshot: a
       cold catalog fetch must land in the setup line, or the totals
       would not reconcile with the caller-visible Io_stats delta.
       Counters come from [Disk.active_stats], so inside a server
       worker's private stream the analysis reconciles with the
       request's stream delta, and outside any parallel region with the
       plain [Io_stats] delta as always. *)
    let pool = Tree_store.buffer_pool t.store in
    let disk = Natix_store.Buffer_pool.disk pool in
    let stats () = Natix_store.Disk.active_stats disk in
    let obs = Tree_store.obs t.store in
    let hops () =
      match obs with
      | None -> 0
      | Some o -> Natix_obs.Metrics.counter (Natix_obs.Obs.metrics o) "ev.proxy_hop"
    in
    let run () =
      (* Snapshot before the root fetch so the setup line covers it. *)
      let s0 = Natix_store.Io_stats.copy (stats ()) in
      let fixes0 = Natix_store.Buffer_pool.fixes pool in
      let misses0 = Natix_store.Buffer_pool.misses pool in
      let hops0 = hops () in
      match root_of t doc with
      | Error e -> Error e
      | Ok root ->
        let plan = plan_ast t ~doc ast in
        let seq, accs = Exec.eval_instrumented t.store ?index:t.index plan root in
        let force () = List.of_seq seq in
        let hits =
          if plan.Plan.scan then Natix_store.Buffer_pool.with_scan pool force else force ()
        in
        let rows = List.length hits in
        let delta = Natix_store.Io_stats.diff (Natix_store.Io_stats.copy (stats ())) s0 in
        let total_fixes = Natix_store.Buffer_pool.fixes pool - fixes0 in
        let total_misses = Natix_store.Buffer_pool.misses pool - misses0 in
        let ops = reports_of_accs plan.Plan.steps accs in
        let last =
          match List.rev accs with [] -> Exec.fresh_acc () | acc :: _ -> acc
        in
        (match obs with
        | None -> ()
        | Some o ->
          List.iteri
            (fun i (op : op_report) ->
              Natix_obs.Obs.child_span o
                (Printf.sprintf "op%d.%s" (i + 1) (Ast.step_to_string op.step.Plan.step))
                ~dur_ms:op.sim_ms)
            ops);
        Ok
          ( hits,
            {
              plan;
              ops;
              setup_reads = delta.Natix_store.Io_stats.reads - last.Exec.reads;
              setup_ms = delta.Natix_store.Io_stats.sim_ms -. last.Exec.sim_ms;
              total_reads = delta.Natix_store.Io_stats.reads;
              total_ms = delta.Natix_store.Io_stats.sim_ms;
              total_fixes;
              total_hits = total_fixes - total_misses;
              total_proxy_hops = hops () - hops0;
              rows;
            } )
    in
    let traced () =
      match obs with
      | None -> run ()
      | Some o ->
        Natix_obs.Obs.with_context o ~doc ~phase:"query" (fun () ->
            Natix_obs.Obs.span o "query.analyze" run)
    in
    match traced () with
    | result -> result
    | exception Error.Error e -> Error e)

let analyze t ~doc path = Result.map snd (analyze_query t ~doc path)

let pp_analysis ppf a =
  Format.fprintf ppf "%a@\n" Plan.pp a.plan;
  Format.fprintf ppf "analyze (reads are physical pages; ms is simulated I/O time):";
  List.iteri
    (fun i (op : op_report) ->
      Format.fprintf ppf
        "@\n  %d. %-20s rows=%-6d reads=%d (est %.0f)  ms=%.2f  fixes=%d hits=%d proxy_hops=%d"
        (i + 1)
        (Ast.step_to_string op.step.Plan.step)
        op.rows op.reads op.step.Plan.est_reads op.sim_ms op.fixes op.hits op.proxy_hops)
    a.ops;
  Format.fprintf ppf "@\n  setup (root fetch):       reads=%d  ms=%.2f" a.setup_reads a.setup_ms;
  Format.fprintf ppf
    "@\n  total: rows=%d reads=%d ms=%.2f fixes=%d hits=%d (ratio %.2f) proxy_hops=%d" a.rows
    a.total_reads a.total_ms a.total_fixes a.total_hits
    (if a.total_fixes = 0 then 1. else float_of_int a.total_hits /. float_of_int a.total_fixes)
    a.total_proxy_hops

let analysis_to_string a = Format.asprintf "%a" pp_analysis a
