open Natix_core

type t = { store : Tree_store.t; index : Element_index.t option }

let create ?index store = { store; index }
let of_manager dm = { store = Document_manager.store dm; index = Document_manager.index dm }
let store t = t.store
let index t = t.index

let parse path =
  match Ast.parse path with
  | ast -> Ok ast
  | exception Ast.Parse_error msg -> Error (Error.Query msg)

let root_of t doc =
  match Cursor.of_document t.store doc with
  | Some root -> Ok root
  | None -> Error (Error.Storage (Printf.sprintf "no document %S" doc))

let plan_ast t ~doc ast = Plan.build t.store ?index:t.index ~doc ast

let plan t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok _ -> Ok (plan_ast t ~doc ast)

(* Scan plans are forced while the pool is in scan mode: with a lazy
   result the scan would otherwise run (and pollute the pool) after
   [with_scan] returned.  Materialising cursors is cheap — they are
   handles, not copies. *)
let run_plan t (plan : Plan.t) root =
  let seq = Exec.eval t.store ?index:t.index plan root in
  if plan.Plan.scan then
    let pool = Tree_store.buffer_pool t.store in
    Natix_store.Buffer_pool.with_scan pool (fun () -> List.to_seq (List.of_seq seq))
  else seq

let query t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok root -> (
    (* Scan plans are forced inside [run_plan], so a failure raised from
       the pipeline surfaces here; lazy plans raise at consumption. *)
    match run_plan t (plan_ast t ~doc ast) root with
    | seq -> Ok seq
    | exception Error.Error e -> Error e)

let query_naive t ~doc path =
  match (parse path, root_of t doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok ast, Ok root -> Ok (List.to_seq (Exec.eval_naive ast root))

let query_all t path =
  match parse path with
  | Error e -> Error e
  | Ok ast ->
    let docs = List.sort String.compare (Tree_store.list_documents t.store) in
    Ok
      (Seq.concat_map
         (fun doc ->
           match root_of t doc with
           | Error _ -> Seq.empty
           | Ok root -> run_plan t (plan_ast t ~doc ast) root)
         (List.to_seq docs))

let explain t ~doc path =
  match plan t ~doc path with
  | Error e -> Error e
  | Ok plan -> Ok (Plan.to_string plan)
