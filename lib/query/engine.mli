(** The query engine's front door.

    Bundles a store with its optional element index and exposes parse →
    plan → evaluate as single calls.  All entry points return typed
    {!Natix_core.Error.t} failures ([Query] for syntax, [Storage] for an
    unknown document) instead of raising.

    Results are lazy cursor sequences in document order; consuming them
    performs the page accesses.  Plans classified as scans (see {!Plan})
    are evaluated with the buffer pool in scan mode, so a scan-resistant
    pool keeps them on probation instead of evicting the working set. *)

open Natix_core

type t

(** [create ?index store] — an engine over [store]; [index] enables
    index-seeded plans. *)
val create : ?index:Element_index.t -> Tree_store.t -> t

(** An engine sharing a document manager's store and index. *)
val of_manager : Document_manager.t -> t

val store : t -> Tree_store.t
val index : t -> Element_index.t option

(** Parse a path ([Error (Query _)] on bad syntax). *)
val parse : string -> (Ast.t, Error.t) result

(** Plan a path against a document without evaluating it. *)
val plan : t -> doc:string -> string -> (Plan.t, Error.t) result

(** Planned, streaming evaluation against one document. *)
val query : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result

(** The naive baseline: strict, navigation-only evaluation of the same
    path (same results, different access pattern). *)
val query_naive : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result

(** Planned evaluation against every document (sorted by name),
    concatenated. *)
val query_all : t -> string -> (Cursor.t Seq.t, Error.t) result

(** The plan, rendered (access method and rationale per step). *)
val explain : t -> doc:string -> string -> (string, Error.t) result
