(** The query engine's front door.

    Bundles a store with its optional element index and exposes parse →
    plan → evaluate as single calls.  All entry points return typed
    {!Natix_core.Error.t} failures ([Query] for syntax, [Storage] for an
    unknown document) instead of raising.

    Results are lazy cursor sequences in document order; consuming them
    performs the page accesses.  Plans classified as scans (see {!Plan})
    are evaluated with the buffer pool in scan mode, so a scan-resistant
    pool keeps them on probation instead of evicting the working set. *)

open Natix_core

type t

(** [create ?index store] — an engine over [store]; [index] enables
    index-seeded plans. *)
val create : ?index:Element_index.t -> Tree_store.t -> t

(** An engine sharing a document manager's store and index. *)
val of_manager : Document_manager.t -> t

val store : t -> Tree_store.t
val index : t -> Element_index.t option

(** Parse a path ([Error (Query _)] on bad syntax). *)
val parse : string -> (Ast.t, Error.t) result

(** Plan a path against a document without evaluating it. *)
val plan : t -> doc:string -> string -> (Plan.t, Error.t) result

(** Planned, streaming evaluation against one document. *)
val query : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result

(** The naive baseline: strict, navigation-only evaluation of the same
    path (same results, different access pattern). *)
val query_naive : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result

(** Planned evaluation against every document (sorted by name),
    concatenated. *)
val query_all : t -> string -> (Cursor.t Seq.t, Error.t) result

(** The plan, rendered (access method and rationale per step). *)
val explain : t -> doc:string -> string -> (string, Error.t) result

(** {2 EXPLAIN ANALYZE}

    {!analyze} runs the planned query to completion while measuring each
    operator against live engine counters, then reconciles: the per-step
    self figures plus the setup line add up {e exactly} to the overall
    {!Natix_store.Io_stats} delta observed across the run (the
    differential tests hold it to that). *)

type op_report = {
  step : Plan.phys_step;
  rows : int;  (** results this operator yielded *)
  reads : int;  (** physical page reads attributable to this operator *)
  sim_ms : float;  (** simulated I/O milliseconds, ditto *)
  fixes : int;
  hits : int;
  proxy_hops : int;
}

type analysis = {
  plan : Plan.t;
  ops : op_report list;  (** one per plan step, in plan order *)
  setup_reads : int;  (** reads outside the pipeline (root fetch) *)
  setup_ms : float;
  total_reads : int;  (** [setup_reads + sum reads] — the Io_stats delta *)
  total_ms : float;
  total_fixes : int;
  total_hits : int;
  total_proxy_hops : int;
  rows : int;
}

(** Run the query strictly (scan plans inside the pool's scan mode, like
    {!query}) and report per-operator estimated vs actual cost.  When the
    store has an obs handle the run is wrapped in a ["query.analyze"]
    span with one synthetic child span per operator, and events emitted
    during it carry a [(doc, "query")] context.

    Counters come from {!Natix_store.Disk.active_stats}, so on a domain
    inside a parallel region the analysis reconciles with that domain's
    private stream delta; elsewhere it reconciles with the plain
    [Io_stats] delta, as the differential tests assert. *)
val analyze : t -> doc:string -> string -> (analysis, Error.t) result

(** {!analyze}, also returning the materialised result cursors — one
    execution serves both the reply and the report.  This is what the
    server's traced query path uses: hits for the [Hits] response, the
    analysis for per-operator spans and the slow-request log. *)
val analyze_query :
  t -> doc:string -> string -> (Natix_core.Cursor.t list * analysis, Error.t) result

val pp_analysis : Format.formatter -> analysis -> unit
val analysis_to_string : analysis -> string
