open Natix_store
open Natix_core

type access = Nav | Index_seed of { label : Natix_util.Label.t; name : string }

type phys_step = { step : Ast.step; access : access; note : string; est_reads : float }

type t = { doc : string; path : Ast.t; steps : phys_step list; scan : bool }

(* A descendant step with one of these tests visits (nearly) every node of
   the context subtree and keeps most of them: evaluating it is a scan, not
   a lookup, so the whole plan runs with the buffer pool in scan mode. *)
let unselective = function
  | Ast.Node | Ast.Any | Ast.Text -> true
  | Ast.Name _ | Ast.Attribute _ -> false

let build store ?index ~doc path =
  let pool = Tree_store.buffer_pool store in
  let disk = Buffer_pool.disk pool in
  let model = Disk.model disk in
  let page_size = Disk.page_size disk in
  let random_ms = Io_model.cost model ~page_size ~sequential:false in
  (* Pages the document occupies: the catalog hint recorded at load time
     when available (a store-wide average misprices skewed stores), the
     average otherwise. *)
  let doc_pages =
    match Stats.page_hint store doc with
    | Some p -> max 1 p
    | None ->
      let ndocs = max 1 (List.length (Tree_store.list_documents store)) in
      max 1 (Disk.page_count disk / ndocs)
  in
  (* Cost of answering a descendant step from the document root by
     navigation: the walk touches every page the document occupies.  On a
     read-ahead pool a mostly-contiguous walk is served by batched
     sequential runs, so it is charged as one run ({!Io_model.run_cost});
     without read-ahead every page access is random. *)
  let nav_ms =
    if Buffer_pool.read_ahead pool > 0 then Io_model.run_cost model ~page_size ~pages:doc_pages
    else float_of_int doc_pages *. random_ms
  in
  (* Estimated physical page reads per step, the planner's own currency
     translated back into pages so EXPLAIN ANALYZE can show estimate vs
     actual.  Only first-step access is priced (later steps are assumed to
     hit already-faulted pages — exactly the simplification [--analyze]
     exposes when it is wrong). *)
  let nav_est = float_of_int doc_pages in
  let steps =
    List.mapi
      (fun i (step : Ast.step) ->
        let first_nav_est =
          if i = 0 && step.Ast.axis = Ast.Descendant then nav_est else 0.
        in
        match (i, step.axis, step.test, index) with
        | 0, Ast.Descendant, Ast.Name name, Some idx -> (
          match Natix_util.Name_pool.find (Tree_store.names store) name with
          | None ->
            { step; access = Nav; note = "name not in store; nav"; est_reads = first_nav_est }
          | Some label ->
            let count = Element_index.count idx label in
            let nrecs = List.length (Element_index.records_with idx label) in
            (* Index seeding fetches each posting record (random reads,
               store-wide) and climbs every hit's ancestors to establish
               document order; the climbs mostly hit records the postings
               already faulted in, so they are charged at a fraction of a
               random access. *)
            let index_reads = float_of_int nrecs +. (0.25 *. float_of_int count) in
            let index_ms = index_reads *. random_ms in
            if index_ms < nav_ms then
              {
                step;
                access = Index_seed { label; name };
                note =
                  Printf.sprintf "index seed: %d recs / %d nodes ~%.0fms < nav ~%.0fms" nrecs
                    count index_ms nav_ms;
                est_reads = index_reads;
              }
            else
              {
                step;
                access = Nav;
                note =
                  Printf.sprintf "nav: index %d recs / %d nodes ~%.0fms >= nav ~%.0fms" nrecs
                    count index_ms nav_ms;
                est_reads = first_nav_est;
              })
        | 0, Ast.Descendant, Ast.Name _, None ->
          { step; access = Nav; note = "no index; nav"; est_reads = first_nav_est }
        | _ -> { step; access = Nav; note = "nav"; est_reads = first_nav_est })
      path
  in
  let scan =
    List.exists (fun ps -> ps.step.Ast.axis = Ast.Descendant && unselective ps.step.Ast.test) steps
  in
  { doc; path; steps; scan }

let uses_index t = List.exists (fun ps -> ps.access <> Nav) t.steps

let pp ppf t =
  Format.fprintf ppf "plan %s on %S (scan mode %s)" (Ast.to_string t.path) t.doc
    (if t.scan then "on" else "off");
  List.iteri
    (fun i ps ->
      Format.fprintf ppf "@\n  %d. %-20s %-10s %s" (i + 1) (Ast.step_to_string ps.step)
        (match ps.access with Nav -> "nav" | Index_seed _ -> "index-seed")
        ps.note)
    t.steps

let to_string t = Format.asprintf "%a" pp t
