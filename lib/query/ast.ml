exception Parse_error of string

type axis = Child | Descendant
type test = Name of string | Attribute of string | Any | Text | Node
type pred = Position of int | Text_equals of string

type step = { axis : axis; test : test; preds : pred list }

type t = step list

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let parse s =
  let n = String.length s in
  if n = 0 then fail "empty path";
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> fail "expected %C, got %C" c c'
    | None -> fail "expected %C at end of path" c
  in
  let axis () =
    expect '/';
    if peek () = Some '/' then begin
      incr pos;
      Descendant
    end
    else Child
  in
  let ident what =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected %s" what;
    String.sub s start (!pos - start)
  in
  let test () =
    match peek () with
    | Some '*' ->
      incr pos;
      Any
    | Some '@' ->
      incr pos;
      Attribute (ident "an attribute name")
    | _ -> (
      let name = ident "a name test" in
      if peek () = Some '(' then begin
        expect '(';
        expect ')';
        match name with
        | "text" -> Text
        | "node" -> Node
        | other -> fail "unknown node test %s()" other
      end
      else Name name)
  in
  let string_literal () =
    expect '\'';
    let start = !pos in
    while !pos < n && s.[!pos] <> '\'' do
      incr pos
    done;
    if !pos >= n then fail "unterminated string literal";
    let v = String.sub s start (!pos - start) in
    incr pos;
    v
  in
  let pred () =
    expect '[';
    let p =
      match peek () with
      | Some ('0' .. '9') -> (
        let start = !pos in
        while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
          incr pos
        done;
        match int_of_string_opt (String.sub s start (!pos - start)) with
        | Some k when k >= 1 -> Position k
        | Some k -> fail "positions are 1-based, got %d" k
        | None -> fail "bad position")
      | _ -> (
        match test () with
        | Text ->
          expect '=';
          Text_equals (string_literal ())
        | _ -> fail "only [k] and [text()='...'] predicates are supported")
    in
    expect ']';
    p
  in
  let preds () =
    let ps = ref [] in
    while peek () = Some '[' do
      ps := pred () :: !ps
    done;
    List.rev !ps
  in
  let steps = ref [] in
  while !pos < n do
    let axis = axis () in
    let test = test () in
    let preds = preds () in
    steps := { axis; test; preds } :: !steps
  done;
  if !steps = [] then fail "empty path";
  List.rev !steps

let test_to_string = function
  | Name n -> n
  | Attribute a -> "@" ^ a
  | Any -> "*"
  | Text -> "text()"
  | Node -> "node()"

let pred_to_string = function
  | Position k -> Printf.sprintf "[%d]" k
  | Text_equals v -> Printf.sprintf "[text()='%s']" v

let step_to_string { axis; test; preds } =
  (match axis with Child -> "/" | Descendant -> "//")
  ^ test_to_string test
  ^ String.concat "" (List.map pred_to_string preds)

let to_string t = String.concat "" (List.map step_to_string t)
