(** Physical plans.

    The planner assigns each step of a parsed path an access method:

    - [Nav] — cursor navigation from each context node (children or
      descendant walk);
    - [Index_seed] — answer a leading [//NAME] step from the
      {!Natix_core.Element_index} instead of walking: fetch the records
      posted under the label, keep the nodes of the queried document, and
      sort them into document order by climbing their ancestor chains.

    The choice is driven by catalog cardinalities, in the currency of the
    disk's {!Natix_store.Io_model}: an index seed costs about one random
    access per posting record plus a discounted climb per node;
    navigation costs one access per page the document occupies (the
    per-document page count recorded by {!Natix_core.Stats} when
    available, the store-wide average otherwise) — all random on a plain
    pool, one sequential run ({!Natix_store.Io_model.run_cost}) when the
    pool has read-ahead.  Index seeding is considered only for the first
    step (its semantics — all nodes of the document except the root — are
    only simple from the root context).

    The plan also records whether evaluating it amounts to a {e scan}
    (some descendant step keeps nearly every node); scans run with the
    buffer pool in scan mode so a scan-resistant pool keeps them out of
    the hot segment. *)

open Natix_core

type access = Nav | Index_seed of { label : Natix_util.Label.t; name : string }

type phys_step = {
  step : Ast.step;
  access : access;
  note : string;  (** why this access method was chosen (for [explain]) *)
  est_reads : float;
      (** planner's estimate of physical page reads for this step: the
          document's page count for a first descendant navigation, posting
          records + discounted climbs for an index seed, and 0 for later
          steps (assumed to hit already-faulted pages).  EXPLAIN ANALYZE
          reports this against the measured reads. *)
}

type t = { doc : string; path : Ast.t; steps : phys_step list; scan : bool }

(** [build store ?index ~doc path] plans [path] against [doc].  Consults
    the element index (when given) for cardinalities; never touches
    document pages. *)
val build : Tree_store.t -> ?index:Element_index.t -> doc:string -> Ast.t -> t

(** True when any step is answered from the element index. *)
val uses_index : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
