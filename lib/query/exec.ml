open Natix_core

(* Shared semantics: both evaluators filter the same base sequences with
   the same predicates, so their results agree byte for byte; they differ
   only in evaluation strategy (lazy vs. strict) and in how a leading
   descendant step finds its candidates (navigation vs. index). *)

let matches test c =
  match test with
  | Ast.Name n -> Cursor.is_element c && String.equal (Cursor.name c) n
  | Ast.Attribute a -> (not (Cursor.is_element c)) && String.equal (Cursor.name c) ("@" ^ a)
  | Ast.Any -> Cursor.is_element c
  | Ast.Text -> Cursor.is_text c && not (Cursor.is_attribute c)
  | Ast.Node -> true

let base (step : Ast.step) c =
  match step.axis with
  | Ast.Child -> Cursor.children c
  | Ast.Descendant -> Seq.concat_map Cursor.descendants_or_self (Cursor.children c)

(* [text()='v']: the candidate has a direct text child equal to [v]. *)
let has_text_equal v c =
  Seq.exists
    (fun ch -> Cursor.is_text ch && (not (Cursor.is_attribute ch)) && String.equal (Cursor.text ch) v)
    (Cursor.children c)

(* The k-th element of a sequence, as a (lazy) zero-or-one sequence: the
   streaming evaluator stops pulling candidates once position [k] is
   reached, which is where it beats strict evaluation on positional
   queries like //ACT[3]. *)
let position k seq () =
  let rec go k seq =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> if k = 1 then Seq.Cons (x, Seq.empty) else go (k - 1) rest
  in
  go k seq

let apply_pred seq = function
  | Ast.Position k -> position k seq
  | Ast.Text_equals v -> Seq.filter (has_text_equal v) seq

(* One navigation step from one context node, lazily. *)
let step_nav (step : Ast.step) c =
  List.fold_left apply_pred (Seq.filter (matches step.test) (base step c)) step.preds

(* ------------------------------------------------------------------ *)
(* Index seeding                                                       *)

(* Identity of stored nodes is physical: [Tree_store.fetch] memoises
   decoded records, so while the store's node cache is warm the same
   stored node is the same OCaml value whether it was reached by
   navigation or through the element index.  (Structural equality is not
   an option — physical nodes carry parent back-pointers.) *)

(* Identity-keyed node table.  [Hashtbl.hash] is depth-bounded, so it
   terminates on the cyclic parent links; equality must be physical. *)
module Node_tbl = Hashtbl.Make (struct
  type t = Phys_node.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Child indexes, memoised per parent: hits under the same wide parent
   share one children traversal instead of one linear scan each (which
   would be quadratic for //X over flat documents). *)
let index_of_child store memo p n =
  let tbl =
    match Node_tbl.find_opt memo p with
    | Some tbl -> tbl
    | None ->
      let tbl = Node_tbl.create 16 in
      Seq.iteri (fun i c -> Node_tbl.replace tbl c i) (Tree_store.logical_children store p);
      Node_tbl.replace memo p tbl;
      tbl
  in
  match Node_tbl.find_opt tbl n with
  | Some i -> i
  | None ->
    Error.raise_error
      (Error.Storage "query: node not among its parent's children (stale node cache?)")

(* Document-order key of [node]: the child-index path from [root] down to
   it, obtained by climbing parents.  [None] when [node] is the root
   itself or belongs to a different document — the index is store-wide,
   the query is not. *)
let order_key store memo ~root node =
  let rec climb n acc =
    match Tree_store.logical_parent store n with
    | None -> if n == root then Some acc else None
    | Some p -> climb p (index_of_child store memo p n :: acc)
  in
  if node == root then None else climb node []

(* A leading //NAME step answered from the element index: take the
   store-wide postings, keep this document's nodes, and sort them into
   document order so downstream steps and the differential tests cannot
   tell the two access paths apart. *)
let step_index store idx (step : Ast.step) c =
  let root = Cursor.node c in
  let label =
    match step.test with
    | Ast.Name n -> (
      match Natix_util.Name_pool.find (Tree_store.names store) n with
      | Some l -> l
      | None -> invalid_arg "Natix_query: index step for an unknown name")
    | _ -> invalid_arg "Natix_query: index step for a non-name test"
  in
  let hits = Element_index.scan idx label in
  let memo = Node_tbl.create 64 in
  let keyed =
    List.filter_map
      (fun n -> match order_key store memo ~root n with Some k -> Some (k, n) | None -> None)
      hits
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare (a : int list) b) keyed in
  let seq =
    Seq.filter (matches step.test)
      (Seq.map (fun (_, n) -> Cursor.of_node store n) (List.to_seq sorted))
  in
  List.fold_left apply_pred seq step.preds

(* ------------------------------------------------------------------ *)
(* Evaluators                                                          *)

(* Streaming planned evaluation: a lazy pipeline over the plan's physical
   steps.  Page accesses happen as the consumer pulls results. *)
let eval store ?index (plan : Plan.t) root =
  List.fold_left
    (fun ctxs (ps : Plan.phys_step) ->
      match ps.access with
      | Plan.Nav -> Seq.concat_map (step_nav ps.step) ctxs
      | Plan.Index_seed _ ->
        let idx =
          match index with
          | Some idx -> idx
          | None -> invalid_arg "Natix_query: plan uses the index but none was given"
        in
        (* Index seeding is only planned for the first step, where the
           context is the root singleton. *)
        Seq.concat_map (step_index store idx ps.step) ctxs)
    (Seq.return root) plan.Plan.steps

(* ------------------------------------------------------------------ *)
(* Instrumented evaluation (EXPLAIN ANALYZE)                           *)

type op_acc = {
  mutable rows : int;
  mutable reads : int;
  mutable sim_ms : float;
  mutable fixes : int;
  mutable hits : int;
  mutable proxy_hops : int;
}

type probe = unit -> op_acc

let fresh_acc () = { rows = 0; reads = 0; sim_ms = 0.; fixes = 0; hits = 0; proxy_hops = 0 }

let store_probe store : probe =
  let pool = Tree_store.buffer_pool store in
  let disk = Natix_store.Buffer_pool.disk pool in
  let hops () =
    match Tree_store.obs store with
    | None -> 0
    | Some obs -> Natix_obs.Metrics.counter (Natix_obs.Obs.metrics obs) "ev.proxy_hop"
  in
  fun () ->
    (* [active_stats] resolves per call: on a worker inside a parallel
       region it is the domain's private stream (so per-operator figures
       reconcile with the request's stream delta); outside any region it
       is the default accumulator, exactly as before. *)
    let stats = Natix_store.Disk.active_stats disk in
    let fixes = Natix_store.Buffer_pool.fixes pool in
    let misses = Natix_store.Buffer_pool.misses pool in
    {
      rows = 0;
      reads = stats.Natix_store.Io_stats.reads;
      sim_ms = stats.Natix_store.Io_stats.sim_ms;
      fixes;
      hits = fixes - misses;
      proxy_hops = hops ();
    }

(* Charge the counter movement across one pull to [acc].  Pulls nest —
   operator [i]'s pull runs operator [i-1]'s pull inside — so each
   accumulator ends up cumulative over its upstream; the reporter
   recovers self figures by differencing adjacent operators. *)
let instrument probe acc seq =
  let rec wrap seq () =
    let before = probe () in
    let node = seq () in
    let after = probe () in
    acc.reads <- acc.reads + (after.reads - before.reads);
    acc.sim_ms <- acc.sim_ms +. (after.sim_ms -. before.sim_ms);
    acc.fixes <- acc.fixes + (after.fixes - before.fixes);
    acc.hits <- acc.hits + (after.hits - before.hits);
    acc.proxy_hops <- acc.proxy_hops + (after.proxy_hops - before.proxy_hops);
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
      acc.rows <- acc.rows + 1;
      Seq.Cons (x, wrap rest)
  in
  wrap seq

(* [eval] with a measuring wrapper between every pair of adjacent
   operators; same results, same access paths, same laziness. *)
let eval_instrumented store ?index (plan : Plan.t) root =
  let probe = store_probe store in
  let rev_accs = ref [] in
  let seq =
    List.fold_left
      (fun ctxs (ps : Plan.phys_step) ->
        let stage =
          match ps.access with
          | Plan.Nav -> Seq.concat_map (step_nav ps.step) ctxs
          | Plan.Index_seed _ ->
            let idx =
              match index with
              | Some idx -> idx
              | None -> invalid_arg "Natix_query: plan uses the index but none was given"
            in
            Seq.concat_map (step_index store idx ps.step) ctxs
        in
        let acc = fresh_acc () in
        rev_accs := acc :: !rev_accs;
        instrument probe acc stage)
      (Seq.return root) plan.Plan.steps
  in
  (seq, List.rev !rev_accs)

(* The naive baseline: cursor navigation only, strict — every step
   materialises all its candidates before predicates apply (the semantics
   spelled out in the AST's documentation, executed literally).  The
   differential suite holds the planned evaluator to byte-identical
   output. *)
let eval_naive (path : Ast.t) root =
  List.fold_left
    (fun nodes (step : Ast.step) ->
      List.concat_map
        (fun c ->
          let hits = List.of_seq (Seq.filter (matches step.test) (base step c)) in
          List.fold_left
            (fun nodes -> function
              | Ast.Position k -> (
                match List.nth_opt nodes (k - 1) with Some x -> [ x ] | None -> [])
              | Ast.Text_equals v -> List.filter (has_text_equal v) nodes)
            hits step.preds)
        nodes)
    [ root ] path
