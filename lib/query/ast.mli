(** Path-query syntax.

    A small XPath-like language, a superset of {!Natix_core.Path}'s —
    enough to express the paper's evaluation queries and the differential
    test corpus:

    {v
      path      ::= (("/" | "//") step)+
      step      ::= test predicate*
      test      ::= NAME | "@" NAME | "*" | "text()" | "node()"
      predicate ::= "[" INTEGER "]" | "[" "text()" "=" "'" ... "'" "]"
    v}

    ["/"] selects children, ["//"] descendants.  [NAME] matches elements,
    ["@" NAME] attribute nodes (stored as ["@name"]-labelled literal
    children), ["*"] any element, ["text()"] text nodes, ["node()"] every
    logical node.  [\[k\]] keeps the k-th candidate (1-based, XPath-style
    {e per context node}); [\[text()='v'\]] keeps candidates with a direct
    text child equal to [v].  Predicates apply left to right. *)

exception Parse_error of string

type axis = Child | Descendant
type test = Name of string | Attribute of string | Any | Text | Node
type pred = Position of int | Text_equals of string

type step = { axis : axis; test : test; preds : pred list }

type t = step list

(** @raise Parse_error on malformed input. *)
val parse : string -> t

val to_string : t -> string
val step_to_string : step -> string
val test_to_string : test -> string
