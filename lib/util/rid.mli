(** Record identifiers.

    As in the paper, a record is identified by a pair [(pageid, slot)]; on
    disk a RID occupies 8 bytes: a 6-byte page identifier followed by a
    2-byte slot number. *)

type t = private { page : int; slot : int }

val make : page:int -> slot:int -> t

(** A reserved identifier that never names a record (page 2^48-1, slot
    2^16-1).  Used e.g. as the parent RID of root records. *)
val null : t

val is_null : t -> bool
val page : t -> int
val slot : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** On-disk size in bytes (8). *)
val encoded_size : int

val write : bytes -> int -> t -> unit
val read : bytes -> int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t
