(** Node labels: interned symbols of the element alphabet Σ_DTD.

    Two labels are reserved:
    - {!scaffold} marks scaffolding objects (helper aggregates and proxies),
      which represent no logical node and therefore carry no symbol;
    - {!pcdata} is the logical type of text literals.

    Labels are created and resolved through a {!Name_pool.t}. *)

type t = int

val scaffold : t
val pcdata : t

(** First label available to user symbols. *)
val first_user : t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_scaffold : t -> bool
val pp : Format.formatter -> t -> unit
