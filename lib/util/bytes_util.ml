let get_u8 b off = Char.code (Bytes.get b off)

let set_u8 b off v =
  assert (v >= 0 && v < 0x100);
  Bytes.set b off (Char.chr v)

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  assert (v >= 0 && v < 0x10000);
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  assert (v >= 0 && v < 0x100000000);
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

let get_u48 b off = get_u32 b off lor (get_u16 b (off + 4) lsl 32)

let set_u48 b off v =
  assert (v >= 0 && v < 0x1000000000000);
  set_u32 b off (v land 0xffffffff);
  set_u16 b (off + 4) ((v lsr 32) land 0xffff)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v
let get_f64 b off = Int64.float_of_bits (get_i64 b off)
let set_f64 b off v = set_i64 b off (Int64.bits_of_float v)
let blit = Bytes.blit
let sub_string = Bytes.sub_string
