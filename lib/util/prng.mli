(** Deterministic pseudo-random generator (splitmix64).

    Used by the workload generator so that every corpus, and therefore every
    benchmark series, is exactly reproducible without relying on the global
    [Random] state. *)

type t

val create : seed:int64 -> t

(** Uniform in [\[0, bound)].  [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [\[lo, hi\]] inclusive. *)
val range : t -> int -> int -> int

val float : t -> float
val bool : t -> bool

(** [pick t arr] selects a uniformly random element of a non-empty array. *)
val pick : t -> 'a array -> 'a
