type t = { mutable state : int64 }

let create ~seed = { state = seed }

let next_u64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) in
  v mod bound

let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) /. 9007199254740992.0
let bool t = Int64.logand (next_u64 t) 1L = 1L
let pick t arr = arr.(int t (Array.length arr))
