(* The pool is shared by every transaction in the store, so all access
   goes through an internal leaf mutex: a holder touches only the two
   in-memory tables and never acquires another lock, so the mutex cannot
   participate in any wait cycle regardless of who calls in. *)
type t = {
  lock : Mutex.t;
  by_name : (string, Label.t) Hashtbl.t;
  mutable by_label : string array;
  mutable count : int;
}

let reserved = [| "#scaffold"; "#pcdata" |]

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create () =
  let t =
    { lock = Mutex.create (); by_name = Hashtbl.create 64; by_label = Array.make 64 ""; count = 0 }
  in
  Array.iter
    (fun name ->
      Hashtbl.replace t.by_name name t.count;
      t.by_label.(t.count) <- name;
      t.count <- t.count + 1)
    reserved;
  t

let grow t =
  if t.count = Array.length t.by_label then begin
    let bigger = Array.make (2 * t.count) "" in
    Array.blit t.by_label 0 bigger 0 t.count;
    t.by_label <- bigger
  end

let intern t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_name name with
      | Some label -> label
      | None ->
        grow t;
        let label = t.count in
        Hashtbl.replace t.by_name name label;
        t.by_label.(label) <- name;
        t.count <- t.count + 1;
        label)

let find t name = locked t (fun () -> Hashtbl.find_opt t.by_name name)

let name t label =
  locked t (fun () ->
      if label < 0 || label >= t.count then invalid_arg "Name_pool.name: unknown label"
      else t.by_label.(label))

let size t = locked t (fun () -> t.count)

let encode t =
  locked t (fun () ->
      let buf = Buffer.create 256 in
      for i = Array.length reserved to t.count - 1 do
        let s = t.by_label.(i) in
        Buffer.add_string buf (string_of_int (String.length s));
        Buffer.add_char buf ':';
        Buffer.add_string buf s
      done;
      Buffer.contents buf)

let decode s =
  let t = create () in
  let n = String.length s in
  let rec loop i =
    if i < n then begin
      let colon = String.index_from s i ':' in
      let len = int_of_string (String.sub s i (colon - i)) in
      let sym = String.sub s (colon + 1) len in
      ignore (intern t sym);
      loop (colon + 1 + len)
    end
  in
  loop 0;
  t
