(** Interning dictionary between element/attribute names and {!Label.t}.

    A fresh pool already contains the reserved labels: {!Label.scaffold}
    (printed as ["#scaffold"]) and {!Label.pcdata} (printed as ["#pcdata"]).
    Attribute names are conventionally interned with an ["@"] prefix. *)

type t

val create : unit -> t

(** [intern t name] returns the label of [name], allocating it if new. *)
val intern : t -> string -> Label.t

(** [find t name] returns the label of [name] if already interned. *)
val find : t -> string -> Label.t option

(** [name t label] is the symbol of [label].
    @raise Invalid_argument on an unknown label. *)
val name : t -> Label.t -> string

(** Number of interned symbols, including the two reserved ones. *)
val size : t -> int

(** Serialization, used to persist the pool in the store catalog. *)

val encode : t -> string
val decode : string -> t
