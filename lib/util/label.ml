type t = int

let scaffold = 0
let pcdata = 1
let first_user = 2
let equal = Int.equal
let compare = Int.compare
let is_scaffold t = t = scaffold
let pp ppf t = Format.fprintf ppf "#%d" t
