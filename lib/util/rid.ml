type t = { page : int; slot : int }

let max_page = 0xffffffffffff
let max_slot = 0xffff

let make ~page ~slot =
  assert (page >= 0 && page <= max_page);
  assert (slot >= 0 && slot <= max_slot);
  { page; slot }

let null = { page = max_page; slot = max_slot }
let is_null t = t.page = max_page && t.slot = max_slot
let page t = t.page
let slot t = t.slot
let equal a b = a.page = b.page && a.slot = b.slot

let compare a b =
  let c = Int.compare a.page b.page in
  if c <> 0 then c else Int.compare a.slot b.slot

let hash t = (t.page * 65599) lxor t.slot
let encoded_size = 8

let write b off t =
  Bytes_util.set_u48 b off t.page;
  Bytes_util.set_u16 b (off + 6) t.slot

let read b off =
  { page = Bytes_util.get_u48 b off; slot = Bytes_util.get_u16 b (off + 6) }

let pp ppf t =
  if is_null t then Format.fprintf ppf "<null-rid>"
  else Format.fprintf ppf "(%d,%d)" t.page t.slot

let to_string t = Format.asprintf "%a" pp t

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
