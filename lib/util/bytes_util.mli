(** Little-endian fixed-width integer accessors over [bytes].

    All offsets are in bytes.  Values are range-checked by assertions in the
    setters; getters return non-negative OCaml [int]s (except the 64-bit
    accessors which use [int64]). *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit

val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit

(** 48-bit unsigned, used for page identifiers inside RIDs. *)

val get_u48 : bytes -> int -> int
val set_u48 : bytes -> int -> int -> unit

val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val get_f64 : bytes -> int -> float
val set_f64 : bytes -> int -> float -> unit

(** [blit src src_off dst dst_off len] is [Bytes.blit] with the argument
    order used throughout this code base. *)
val blit : bytes -> int -> bytes -> int -> int -> unit

(** Substring extraction returning a fresh [string]. *)
val sub_string : bytes -> int -> int -> string
