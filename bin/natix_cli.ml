(* natix: command-line front end to the repository.

   A persistent, file-backed NATIX store:

     natix load  store.natix hamlet hamlet.xml --order bfs
     natix bulkload store.natix *.xml --jobs 4
     natix list  store.natix
     natix cat   store.natix hamlet
     natix query store.natix hamlet "//ACT[3]/SCENE[2]//SPEAKER"
     natix query store.natix hamlet "//SPEAKER" --explain   (show the plan)
     natix stats store.natix [hamlet]
     natix check store.natix hamlet
     natix scan  store.natix SPEAKER          (index-accelerated typed scan)
     natix validate store.natix hamlet        (against the stored DTD)
     natix delete store.natix hamlet
     natix gen   out.xml --scale 0.1        (synthetic corpus as XML files)
     natix trace hamlet.xml [--jsonl t.jsonl]  (instrumented load + report)

   Store-touching commands run on a Natix.Session, the facade that
   bundles disk + tree store + document manager + query engine.  Commands
   that only read close the session without committing and never create
   or rebuild the element index ([query] opens a persisted index only
   when it is current — a stale one would silently miss results, a
   rebuild would dirty pages — and otherwise plans by navigation), so
   they never mutate the store file.  Mutating commands ([load],
   [delete]) open a persisted index so their change listener keeps it
   current; [scan] creates or repairs it.  The forensics commands (trace,
   fsck, recover) keep their direct disk/store plumbing on purpose. *)

open Cmdliner
open Natix_core

(* The most recently opened session, for the error-path flight dump: when
   the process dies on a typed error or a storage exception, the monitor's
   operation ring is flushed to a JSONL file so the failing workload can
   be inspected (and its query ops replayed) post mortem. *)
let current_session : Natix.Session.t option ref = ref None

let open_session ?(create_page_size = 8192) ?(index = Document_manager.Off) path =
  let sess =
    Natix.Session.open_store
      ~options:{ Natix.Session.Options.default with create_page_size; index }
      path
  in
  current_session := Some sess;
  sess

let dump_flight_on_error () =
  match !current_session with
  | None -> ()
  | Some sess ->
    if Natix.Session.mon sess <> None then begin
      (* [Session.flight_path] honours NATIX_FLIGHT_PATH, so crash dumps
         can be steered somewhere writable (CI sandboxes, read-only
         CWDs). *)
      let path = Natix.Session.flight_path () in
      let oc = open_out path in
      Natix.Session.dump_flight sess oc;
      close_out oc;
      Printf.eprintf "natix: flight recorder written to %s\n" path
    end

let fail_error e =
  Printf.eprintf "natix: %s\n" (Error.to_string e);
  dump_flight_on_error ();
  exit (Error.exit_code e)

(* ---- arguments ---------------------------------------------------- *)

let store_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE" ~doc:"Store file.")

let doc_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"DOC" ~doc:"Document name.")

let page_size_arg =
  Arg.(
    value
    & opt int 8192
    & info [ "page-size" ] ~docv:"BYTES" ~doc:"Page size when creating a new store (512-32768).")

let order_arg =
  let order_conv =
    Arg.enum [ ("preorder", Loader.Preorder); ("append", Loader.Preorder); ("bfs", Loader.Bfs_binary); ("incremental", Loader.Bfs_binary) ]
  in
  Arg.(
    value
    & opt order_conv Loader.Preorder
    & info [ "order" ] ~docv:"ORDER" ~doc:"Insertion order: $(b,preorder) (bulkload) or $(b,bfs) (scattered incremental updates).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for parallel execution; $(b,1) (the default) runs inline.")

(* ---- commands ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cmd =
  let run store_path doc xml_path page_size order stream =
    (* A persisted element index must see this load (via the session's
       change listener) or it would go stale; absent one, don't create
       an index the user never asked for. *)
    let sess =
      open_session ~create_page_size:page_size ~index:Document_manager.Maintain store_path
    in
    let store = Natix.Session.store sess in
    let text = read_file xml_path in
    let nodes =
      if stream then begin
        (* one-pass SAX load; the parsed tree is only for the node-count
           report *)
        let xml = Natix_xml.Xml_parser.parse_file xml_path in
        ignore (Loader.load_stream store ~name:doc text);
        Natix_xml.Xml_tree.node_count xml
      end
      else
        (* The Api command path — the same request a server connection
           would dispatch. *)
        match Natix.Session.exec sess (Natix.Api.Load { doc; xml = text; order }) with
        | Natix.Api.Loaded { nodes; _ } -> nodes
        | Natix.Api.Err e -> fail_error e
        | _ -> assert false
    in
    Printf.printf "loaded %S (%d logical nodes) into %s\n" doc nodes store_path;
    Format.printf "%a@." Stats.pp_doc (Stats.document store doc);
    Natix.Session.close sess
  in
  let xml_arg =
    Arg.(required & pos 2 (some file) None & info [] ~docv:"FILE" ~doc:"XML file to load.")
  in
  let stream = Arg.(value & flag & info [ "stream" ] ~doc:"One-pass SAX load.") in
  Cmd.v
    (Cmd.info "load" ~doc:"Parse an XML file and store it as a document.")
    Term.(const run $ store_arg $ doc_arg 1 $ xml_arg $ page_size_arg $ order_arg $ stream)

let bulkload_cmd =
  let run store_path xml_paths page_size jobs txn =
    (* Document names derive from basenames, so dir1/a.xml and dir2/a.xml
       would silently collide on "a"; refuse upfront with the offending
       paths instead of surfacing a confusing per-document store error. *)
    let named = List.map (fun p -> (Filename.remove_extension (Filename.basename p), p)) xml_paths in
    let collisions =
      List.filter_map
        (fun name ->
          match List.filter_map (fun (n, p) -> if n = name then Some p else None) named with
          | _ :: _ :: _ as paths -> Some (name, paths)
          | _ -> None)
        (List.sort_uniq String.compare (List.map fst named))
    in
    if collisions <> [] then begin
      List.iter
        (fun (name, paths) ->
          Printf.eprintf "natix: document name %S derived from several inputs: %s\n" name
            (String.concat ", " paths))
        collisions;
      fail_error
        (Error.Storage "bulkload: duplicate document names; rename the files or load separately")
    end;
    let sess =
      open_session ~create_page_size:page_size ~index:Document_manager.Maintain store_path
    in
    let files = List.map (fun (name, p) -> (name, read_file p)) named in
    let outcome =
      if txn then Natix.Session.load_files_txn ~jobs sess files
      else Natix.Session.load_files ~jobs sess files
    in
    let failed = ref None in
    List.iter2
      (fun (name, _) result ->
        match result with
        | Ok () -> Printf.printf "loaded %S\n" name
        | Error e ->
          Printf.eprintf "natix: %S: %s\n" name (Error.to_string e);
          if !failed = None then failed := Some e)
      files outcome.Natix_par.Par.results;
    List.iter
      (fun ws ->
        Format.eprintf "worker %d: %a@." ws.Natix_par.Par.worker Natix_store.Io_stats.pp
          ws.Natix_par.Par.io)
      outcome.Natix_par.Par.workers;
    Natix.Session.close sess;
    match !failed with None -> () | Some e -> exit (Error.exit_code e)
  in
  let xml_args =
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE" ~doc:"XML files to load.")
  in
  let txn_arg =
    Arg.(
      value & flag
      & info [ "txn" ]
          ~doc:
            "Commit each document as an ARIES transaction through the group-commit daemon \
             instead of a store-wide checkpoint: commit fsyncs from parallel workers batch \
             instead of serialising.")
  in
  Cmd.v
    (Cmd.info "bulkload"
       ~doc:
         "Load many XML files in one go, each as a document named after its basename.  With \
          --jobs > 1 files parse on parallel worker domains while store commits stay \
          serialised, one WAL batch per document ($(b,--txn) commits them as overlapping \
          transactions instead).")
    Term.(const run $ store_arg $ xml_args $ page_size_arg $ jobs_arg $ txn_arg)

let list_cmd =
  let run store_path =
    let sess = open_session store_path in
    List.iter print_endline (Natix.Session.documents sess);
    Natix.Session.close ~commit:false sess
  in
  Cmd.v (Cmd.info "list" ~doc:"List stored documents.") Term.(const run $ store_arg)

let cat_cmd =
  let run store_path doc pretty =
    let sess = open_session store_path in
    (match Natix.Session.export sess doc with
    | None -> prerr_endline "no such document"; exit 1
    | Some xml ->
      if pretty then print_string (Natix_xml.Xml_print.to_string_pretty xml)
      else print_endline (Natix_xml.Xml_print.to_string xml));
    Natix.Session.close ~commit:false sess
  in
  let pretty = Arg.(value & flag & info [ "pretty" ] ~doc:"Indented output.") in
  Cmd.v
    (Cmd.info "cat" ~doc:"Reconstruct a document's textual representation.")
    Term.(const run $ store_arg $ doc_arg 1 $ pretty)

let query_cmd =
  let run store_path doc path texts naive explain analyze no_index jobs =
    (* With the index open the planner may seed descendant steps from it;
       [--no-index] (or [--naive]) forces pure navigation.  [Fresh_only]
       keeps this command read-only: a persisted index is used only when
       it is current — never created or rebuilt here. *)
    let index =
      if no_index || naive then Document_manager.Off else Document_manager.Fresh_only
    in
    let sess = open_session ~index store_path in
    (if index = Document_manager.Fresh_only
        && Document_manager.stale_index_skipped (Natix.Session.manager sess) then
       prerr_endline
         "note: the element index is stale (the store changed without it); planning by \
          navigation.  Run `natix scan` once to rebuild it.");
    let store = Natix.Session.store sess in
    (if jobs > 1 then begin
       (* The parallel executor renders markup hits only (worker domains
          use private reader views; see Natix_par.Par), so the flags that
          change evaluation or rendering stay sequential-only. *)
       if texts || naive || explain || analyze then begin
         prerr_endline "natix: --jobs combines only with plain evaluation";
         exit 2
       end;
       let outcome = Natix.Session.run_queries ~jobs sess [ (doc, path) ] in
       match outcome.Natix_par.Par.results with
       | [ Error e ] -> fail_error e
       | [ Ok hits ] ->
         List.iter print_endline hits;
         Printf.eprintf "%d hit(s); %s\n" (List.length hits)
           (Format.asprintf "%a" Natix_store.Io_stats.pp (Tree_store.io_stats store))
       | _ -> assert false
     end
     else if analyze then
       match Natix.Session.analyze sess ~doc path with
       | Ok a -> print_endline (Natix_query.Engine.analysis_to_string a)
       | Error e -> fail_error e
     else if explain then
       match Natix.Session.explain sess ~doc path with
       | Ok plan -> print_endline plan
       | Error e -> fail_error e
     else if naive then
       match Natix.Session.query_naive sess ~doc path with
       | Error e -> fail_error e
       | Ok hits ->
         let n = ref 0 in
         Seq.iter
           (fun c ->
             incr n;
             if texts then print_endline (Cursor.text_content c)
             else if Cursor.is_element c then
               print_endline (Exporter.to_string store (Cursor.node c))
             else print_endline (Cursor.text c))
           hits;
         Printf.eprintf "%d hit(s); %s\n" !n
           (Format.asprintf "%a" Natix_store.Io_stats.pp (Tree_store.io_stats store))
     else
       (* Plain evaluation goes through the Api command path — the same
          request a server connection would dispatch. *)
       match Natix.Session.exec sess (Natix.Api.Query { doc; path; texts }) with
       | Natix.Api.Err e -> fail_error e
       | Natix.Api.Hits hits ->
         List.iter print_endline hits;
         Printf.eprintf "%d hit(s); %s\n" (List.length hits)
           (Format.asprintf "%a" Natix_store.Io_stats.pp (Tree_store.io_stats store))
       | _ -> assert false);
    Natix.Session.close ~commit:false sess
  in
  let path_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"PATH" ~doc:"Path query, e.g. //ACT[3]/SCENE[2]//SPEAKER.")
  in
  let texts = Arg.(value & flag & info [ "text" ] ~doc:"Print text content instead of markup.") in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:"Strict per-step evaluation without planning (the differential baseline).")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the physical plan instead of evaluating.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "EXPLAIN ANALYZE: run the query and print the plan with estimated vs actual page \
             reads, buffer hits and simulated I/O time per operator.")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-index" ] ~doc:"Plan without the element index (navigation only).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a path query against a document via the planning engine (child/descendant \
          steps, attribute and text() tests, positional and text-equality predicates).")
    Term.(
      const run $ store_arg $ doc_arg 1 $ path_arg $ texts $ naive $ explain $ analyze $ no_index
      $ jobs_arg)

let stats_cmd =
  let run store_path doc =
    let sess = open_session store_path in
    let store = Natix.Session.store sess in
    (match doc with
    | Some doc -> Format.printf "%s: %a@." doc Stats.pp_doc (Stats.document store doc)
    | None ->
      List.iter
        (fun doc -> Format.printf "%-20s %a@." doc Stats.pp_doc (Stats.document store doc))
        (Natix.Session.documents sess));
    Printf.printf "store: %d pages of %d bytes = %d bytes on disk\n"
      (Natix_store.Disk.page_count (Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store)))
      (Tree_store.config store).Config.page_size (Stats.disk_bytes store);
    Natix.Session.close ~commit:false sess
  in
  let doc = Arg.(value & pos 1 (some string) None & info [] ~docv:"DOC") in
  Cmd.v
    (Cmd.info "stats" ~doc:"Physical statistics of documents and the store.")
    Term.(const run $ store_arg $ doc)

let check_cmd =
  let run store_path doc =
    let sess = open_session store_path in
    Tree_store.check_document (Natix.Session.store sess) doc;
    print_endline "ok";
    Natix.Session.close ~commit:false sess
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the physical-tree integrity check on a document.")
    Term.(const run $ store_arg $ doc_arg 1)

let scan_cmd =
  let run store_path element texts =
    (* [Ensure] creates the index on first use and rebuilds it if it went
       stale; the session commits on close, persisting the repair. *)
    let sess = open_session ~index:Document_manager.Ensure store_path in
    (match Natix.Session.exec sess (Natix.Api.Scan { element; texts }) with
    | Natix.Api.Err e -> fail_error e
    | Natix.Api.Scanned hits ->
      List.iter print_endline hits;
      Printf.eprintf "%d node(s) of type %s\n" (List.length hits) element
    | _ -> assert false);
    Natix.Session.close sess
  in
  let element_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ELEMENT" ~doc:"Element name.")
  in
  let texts = Arg.(value & flag & info [ "text" ] ~doc:"Print text content instead of markup.") in
  Cmd.v
    (Cmd.info "scan" ~doc:"Scan all elements of a given type via the element index.")
    Term.(const run $ store_arg $ element_arg $ texts)

let validate_cmd =
  let run store_path doc =
    let sess = open_session store_path in
    (match Document_manager.document_dtd (Natix.Session.manager sess) doc with
    | None ->
      print_endline "no DTD stored with this document";
      exit 1
    | Some _ -> (
      match Natix.Session.validate sess doc with
      | Ok () -> print_endline "valid"
      | Error e ->
        Printf.printf "invalid: %s\n" (Error.to_string e);
        exit (Error.exit_code e)));
    Natix.Session.close ~commit:false sess
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against its stored DTD.")
    Term.(const run $ store_arg $ doc_arg 1)

let delete_cmd =
  let run store_path doc =
    (* Like [load]: keep a persisted index in step with the deletion. *)
    let sess = open_session ~index:Document_manager.Maintain store_path in
    Natix.Session.delete_document sess doc;
    Natix.Session.close sess;
    Printf.printf "deleted %S\n" doc
  in
  Cmd.v (Cmd.info "delete" ~doc:"Delete a document.") Term.(const run $ store_arg $ doc_arg 1)

(* ---- request tracing against the serving stack -------------------- *)

(* Query workload files: one `DOC PATH` task per line (the first
   whitespace separates the document from the query); blank lines and
   `#` comments are skipped. *)
let read_tasks path =
  read_file path |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let l = String.trim line in
         if l = "" || l.[0] = '#' then None
         else begin
           let cut =
             match (String.index_opt l ' ', String.index_opt l '\t') with
             | Some a, Some b -> Some (min a b)
             | (Some _ as c), None | None, (Some _ as c) -> c
             | None, None -> None
           in
           match cut with
           | None ->
             Printf.eprintf "natix: %s: task line %S has no query\n" path l;
             exit 2
           | Some i -> Some (String.sub l 0 i, String.trim (String.sub l i (String.length l - i)))
         end)

let queries_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:"Query workload: one $(b,DOC PATH) task per line ($(b,#) comments).")

(* The span tree of one request, indented by causal depth: wall interval
   on the simulated clock, then the span's total and self I/O from the
   request's private disk stream. *)
let pp_trace_report ppf (r : Natix_trace.Trace.report) =
  let open Natix_trace.Trace in
  Format.fprintf ppf "%s %-6s %-24s queued %.2fms  dur %.2fms  io %dr/%dw/%.2fms" r.trace_id
    r.kind
    (if r.detail = "" then "-" else r.detail)
    r.queued_ms r.dur_ms r.total.reads r.total.writes r.total.io_ms;
  let depth = Hashtbl.create 16 in
  List.iter
    (fun (s : span_report) ->
      let d = match Hashtbl.find_opt depth s.parent with Some d -> d + 1 | None -> 0 in
      Hashtbl.replace depth s.id d;
      Format.fprintf ppf "@\n  %s%-*s %10.2f ..%10.2f  total %dr/%.2fms  self %dr/%.2fms"
        (String.make (2 * d) ' ')
        (max 1 (26 - (2 * d)))
        s.name s.start_ms (s.start_ms +. s.dur_ms) s.total.reads s.total.io_ms s.self.reads
        s.self.io_ms)
    r.spans;
  match r.plan with
  | None -> ()
  | Some plan ->
    Format.fprintf ppf "@\n";
    List.iter (fun l -> Format.fprintf ppf "@\n  | %s" l) (String.split_on_char '\n' plan)

(* Merge per-request folded stacks into one aggregate profile: identical
   stacks sum their simulated-µs weights, and the byte order is the
   sorted stack order, so identical workloads export identical bytes. *)
let merge_folded reports =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      String.split_on_char '\n' (Natix_trace.Trace.folded r)
      |> List.iter (fun line ->
             match String.rindex_opt line ' ' with
             | None -> ()
             | Some i ->
               let stack = String.sub line 0 i in
               let n = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
               Hashtbl.replace tbl stack
                 (n + Option.value ~default:0 (Hashtbl.find_opt tbl stack))))
    reports;
  let lines = Hashtbl.fold (fun stack n acc -> Printf.sprintf "%s %d" stack n :: acc) tbl [] in
  String.concat "" (List.map (fun l -> l ^ "\n") (List.sort String.compare lines))

let tenant_arg =
  Arg.(
    value
    & opt string "t"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:"Tenant served in $(b,--serve) mode ($(i,ROOT)/$(i,NAME).natix must exist).")

let serve_flag =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Treat the positional argument as a store directory and drive the workload through \
           the multi-tenant dispatcher (codec, framing, admission, tenant gate), not a bare \
           session.")

(* Run a query workload through the full serving stack with tracing on
   and hand back the server for introspection.  Every request goes
   through the loopback client — the same bytes as a socket peer — so
   the traces cover the path production requests take. *)
let serve_traced ~root ~tenant ~jobs ~trace queries use =
  let registry = Natix_server.Registry.create ~root () in
  let config =
    { Natix_server.Server.default_config with jobs; trace = Some trace }
  in
  let server = Natix_server.Server.create ~config registry in
  Fun.protect
    ~finally:(fun () ->
      Natix_server.Server.shutdown server;
      Natix_server.Registry.close_all registry)
    (fun () ->
      let conn = Natix_server.Server.Loopback.connect server ~tenant in
      let tasks = match queries with None -> [] | Some qf -> read_tasks qf in
      List.iter
        (fun (doc, path) ->
          match
            Natix_server.Server.Loopback.call conn (Natix.Api.Query { doc; path; texts = false })
          with
          | Natix.Api.Hits _ -> ()
          | r ->
            Printf.eprintf "natix: %s %s: %s\n" doc path
              (Format.asprintf "%a" Natix.Api.pp_response r))
        tasks;
      use server conn)

let trace_cmd =
  let run_serve root tenant queries jobs slow_ms jsonl folded =
    serve_traced ~root ~tenant ~jobs
      ~trace:{ Natix_server.Server.default_trace with slow_ms }
      queries
      (fun server _conn ->
        let reports = Natix_server.Server.trace_reports server in
        let slow = Natix_server.Server.slow_reports server in
        Format.printf "natix trace --serve %s — tenant %s, %d request(s), %d slow@." root tenant
          (List.length reports) (List.length slow);
        List.iter (fun r -> Format.printf "@.%a@." pp_trace_report r) reports;
        (match jsonl with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          List.iter
            (fun r ->
              output_string oc (Natix_obs.Json.to_string (Natix_trace.Trace.report_to_json r));
              output_char oc '\n')
            reports;
          close_out oc;
          Printf.printf "wrote %d trace report(s) to %s\n" (List.length reports) path);
        match folded with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc (merge_folded reports);
          close_out oc;
          Printf.printf "wrote folded stacks to %s\n" path)
  in
  let run xml_path page_size order jsonl last folded kind docf since_ms summary serve tenant
      queries serve_jobs slow_ms =
    if serve then run_serve xml_path tenant queries serve_jobs slow_ms jsonl folded
    else begin
    let keep = Natix_prof.Trace_view.keep_event ?kind ?doc:docf ?since_ms in
    let ring = Natix_obs.Sink.ring ~capacity:65536 () in
    (* The ring keeps the unfiltered stream (metrics and folded stacks
       need all of it); filters apply to what is written and printed. *)
    let jsonl_sink = Option.map Natix_obs.Sink.jsonl jsonl in
    let sink =
      match jsonl_sink with
      | None -> ring
      | Some js ->
        Natix_obs.Sink.multi
          [ ring; Natix_obs.Sink.callback (fun e -> if keep e then Natix_obs.Sink.emit js e) ]
    in
    let obs = Natix_obs.Obs.create ~sink () in
    let config =
      Config.default () |> Config.with_page_size page_size |> Config.with_obs obs
    in
    let store = Tree_store.in_memory ~config () in
    let xml = Natix_xml.Xml_parser.parse_file xml_path in
    let doc = Filename.remove_extension (Filename.basename xml_path) in
    ignore (Loader.load store ~name:doc ~order xml);
    Tree_store.sync store;
    Format.printf "== load ==@.";
    Format.printf "%s: %a@." doc Stats.pp_doc (Stats.document store doc);
    Format.printf "io: %a@." Natix_store.Io_stats.pp (Tree_store.io_stats store);
    Format.printf "splits=%d merges=%d@." (Tree_store.split_count store)
      (Tree_store.merge_count store);
    (* Cold full traversal under the paper's measurement protocol: clear
       the buffer (and the decoded-record memo), reset the fix/miss
       counters, then read the hit ratio of that one operation. *)
    let pool = Tree_store.buffer_pool store in
    Tree_store.clear_buffers store;
    Natix_store.Buffer_pool.reset_stats pool;
    let before = Natix_store.Io_stats.copy (Tree_store.io_stats store) in
    let visited = ref 0 in
    (match Tree_store.open_document store doc with
    | None -> ()
    | Some root ->
      let rec walk n =
        incr visited;
        Seq.iter walk (Tree_store.logical_children store n)
      in
      walk root);
    let delta =
      Natix_store.Io_stats.diff (Natix_store.Io_stats.copy (Tree_store.io_stats store)) before
    in
    Format.printf "@.== traversal (cold buffers) ==@.";
    Format.printf "visited %d logical nodes@." !visited;
    Format.printf "io: %a@." Natix_store.Io_stats.pp delta;
    Format.printf "buffer hit ratio: %.3f@." (Natix_store.Buffer_pool.hit_ratio pool);
    Format.printf "@.== metrics ==@.%a@." Natix_obs.Metrics.pp (Natix_obs.Obs.metrics obs);
    (if summary then begin
       (* Aggregate the (filtered) event stream per (kind, doc) through
          the monitoring layer's window machinery: one bucket wide enough
          for the whole run, context = (doc, event kind), so the
          registry's per-context aggregation does the grouping. *)
       let reg = Natix_mon.Registry.create ~bucket_ms:1e12 ~buckets:1 () in
       List.iter
         (fun (e : Natix_obs.Event.t) ->
           if keep e then begin
             let doc = match e.ctx with Some c -> c.Natix_obs.Event.doc | None -> None in
             let kind = Natix_obs.Event.type_name e.kind in
             let ctx = { Natix_obs.Event.doc; phase = kind } in
             Natix_mon.Registry.record reg ~ctx ~at_ms:e.at_ms "events" 1.;
             match e.kind with
             | Natix_obs.Event.Span { name; dur_ms; _ } ->
               Natix_mon.Registry.record reg
                 ~ctx:{ Natix_obs.Event.doc; phase = name }
                 ~at_ms:e.at_ms "span_sim_ms" dur_ms
             | _ -> ()
           end)
         (Natix_obs.Obs.events obs);
       let snap = Natix_mon.Registry.snapshot reg ~at_ms:0. in
       let by_ctx name =
         match
           List.find_opt (fun s -> s.Natix_mon.Registry.name = name)
             snap.Natix_mon.Registry.series
         with
         | None -> []
         | Some s -> s.Natix_mon.Registry.by_ctx
       in
       Format.printf "@.== summary: events per (kind, doc) ==@.";
       List.iter
         (fun ((doc, kind), (a : Natix_mon.Window.agg)) ->
           Format.printf "%-18s %-18s %8d@." kind (Option.value doc ~default:"-") a.count)
         (by_ctx "events");
       match by_ctx "span_sim_ms" with
       | [] -> ()
       | spans ->
         Format.printf "@.== summary: sim-ms per (span, doc) ==@.";
         List.iter
           (fun ((doc, name), (a : Natix_mon.Window.agg)) ->
             Format.printf "%-18s %-18s %8d %12.3f@." name (Option.value doc ~default:"-")
               a.count a.sum)
           spans
     end);
    (if last > 0 then begin
       let events = List.filter keep (Natix_obs.Obs.events obs) in
       let buffered = List.length events in
       let rec drop k l = match l with _ :: t when k > 0 -> drop (k - 1) t | l -> l in
       let tail = drop (buffered - last) events in
       Format.printf "== trace tail (%d of %d emitted) ==@." (List.length tail)
         (Natix_obs.Sink.emitted ring);
       List.iter (fun e -> Format.printf "%a@." Natix_obs.Event.pp e) tail
     end);
    (match folded with
    | None -> ()
    | Some path ->
      let spans = Natix_prof.Flame.spans_of_events (Natix_obs.Obs.events obs) in
      let oc = open_out path in
      output_string oc (Natix_prof.Flame.to_string spans);
      close_out oc;
      Printf.printf "wrote folded stacks (%d spans) to %s\n" (List.length spans) path);
    match (jsonl, jsonl_sink) with
    | Some path, Some js ->
      (* A final line with the metrics snapshot follows the event stream. *)
      Natix_obs.Sink.write_json js (Natix_obs.Metrics.to_json (Natix_obs.Obs.metrics obs));
      Natix_obs.Obs.close obs;
      Printf.printf "wrote %d events (+1 metrics line) to %s\n" (Natix_obs.Sink.emitted js) path
    | _ -> ()
    end
  in
  let xml_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"XML file to load ($(b,--serve): a store directory).")
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also write the full event stream as JSON lines.")
  in
  let last_arg =
    Arg.(
      value
      & opt int 12
      & info [ "last" ] ~docv:"N" ~doc:"Print the last $(docv) trace events (0 disables).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write the span nesting as folded stacks (simulated µs weights), the format \
             flamegraph.pl and speedscope consume.")
  in
  let kind_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"TYPE"
          ~doc:"Keep only events of this type (e.g. $(b,io), $(b,page_fix), $(b,split)).")
  in
  let doc_filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "doc" ] ~docv:"DOC" ~doc:"Keep only events attributed to this document.")
  in
  let since_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "since-ms" ] ~docv:"MS"
          ~doc:"Keep only events stamped at or after this simulated time.")
  in
  let summary_arg =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Aggregate the (filtered) event stream: event counts per (kind, doc) and simulated \
             milliseconds per (span, doc).")
  in
  let serve_jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "($(b,--serve)) Worker domains dispatching requests; $(b,0) (the default) executes \
             inline, which makes double runs byte-identical.")
  in
  let slow_arg =
    Arg.(
      value & opt float infinity
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "($(b,--serve)) Requests at or above this simulated duration also land in the \
             slow-request log.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Load an XML file into an instrumented in-memory store and report traces and metrics \
          (splits, fill factors, buffer hit ratio).  --kind/--doc/--since-ms filter the JSONL \
          output and the printed tail; --folded exports a flamegraph; --summary aggregates per \
          (kind, doc).  With $(b,--serve ROOT), trace a query workload end to end through the \
          multi-tenant dispatcher instead: per-request span trees (queue wait, tenant gate, \
          per-operator execution, commit fsync) whose I/O figures reconcile exactly with each \
          request's private disk stream; --jsonl and --folded then export the trace reports \
          and the aggregated flamegraph.")
    Term.(
      const run $ xml_arg $ page_size_arg $ order_arg $ jsonl_arg $ last_arg $ folded_arg
      $ kind_arg $ doc_filter_arg $ since_arg $ summary_arg $ serve_flag $ tenant_arg
      $ queries_arg $ serve_jobs_arg $ slow_arg)

(* fsck bypasses the session facade: it must open a possibly-damaged
   store with the bare layers so a failure can fall back to the raw
   page sweep. *)
let open_store path =
  let page_size =
    Option.value ~default:8192 (Natix_store.Disk.detect_page_size path)
  in
  let config = { (Config.default ()) with Config.page_size } in
  Tree_store.open_store ~config (Natix_store.Disk.on_file ~page_size path)

let fsck_cmd =
  let run store_path =
    let report =
      match open_store store_path with
      | store -> Fsck.run store
      | exception ((Natix_store.Disk.Bad_page _ | Natix_store.Btree.Corrupt _) as e) ->
        (* Too damaged to open: fall back to the raw page-trailer sweep so
           the report still says which pages are bad. *)
        Printf.eprintf "natix: store does not open (%s); page sweep only\n"
          (Printexc.to_string e);
        let page_size =
          Option.value ~default:8192 (Natix_store.Disk.detect_page_size store_path)
        in
        let disk = Natix_store.Disk.on_file ~page_size store_path in
        Fun.protect
          ~finally:(fun () -> Natix_store.Disk.close disk)
          (fun () -> Fsck.run_disk disk)
    in
    Format.printf "%a@." Fsck.pp report;
    if not (Fsck.ok report) then exit 4
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify the whole store: page checksums and trailers, slotted-page layouts, document \
          trees (proxy chains, cached sizes), and element-index B-tree invariants.  Exits 4 when \
          corruption is found.")
    Term.(const run $ store_arg)

let recover_cmd =
  let run store_path jsonl =
    match Natix_store.Disk.detect_page_size store_path with
    | None ->
      prerr_endline "not a natix store (missing, truncated, or foreign file)";
      exit 2
    | Some page_size ->
      let obs =
        Option.map (fun p -> Natix_obs.Obs.create ~sink:(Natix_obs.Sink.jsonl p) ()) jsonl
      in
      let disk = Natix_store.Disk.on_file ~page_size ?obs store_path in
      let report = Natix_store.Recovery.run ?obs:(Natix_store.Disk.obs disk) disk in
      Printf.printf
        "%s: %s; %d page(s) redone, %d page(s) undone across %d loser(s), %d torn log byte(s) \
         discarded, %d page(s) on disk\n"
        store_path
        (if not report.Natix_store.Recovery.ran then "no write-ahead log, nothing to do"
         else if report.clean then "log was clean (no losers, no torn tail)"
         else "rolled back uncommitted transaction(s)")
        report.redone report.undone report.losers report.torn_bytes report.page_count;
      Natix_store.Disk.close disk;
      Option.iter Natix_obs.Obs.close obs
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Write the recovery event trace as JSON lines.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Run crash recovery on a store explicitly (opening a store does this automatically): \
          discard the write-ahead log's torn tail, roll back the uncommitted batch, and report.")
    Term.(const run $ store_arg $ jsonl_arg)

let doctor_cmd =
  let run store_path top =
    (* Open with an instrumented config (ring sink) so the report's probe
       traversal populates the trace-derived sections; read-only — the
       session is closed without committing. *)
    let page_size =
      Option.value ~default:8192 (Natix_store.Disk.detect_page_size store_path)
    in
    let obs = Natix_obs.Obs.create ~sink:(Natix_obs.Sink.ring ~capacity:262144 ()) () in
    let config =
      { (Config.default ()) with Config.page_size } |> Config.with_obs obs
    in
    let store = Tree_store.open_store ~config (Natix_store.Disk.on_file ~page_size store_path) in
    Fun.protect
      ~finally:(fun () -> Tree_store.close ~commit:false store)
      (fun () -> print_string (Natix_prof.Doctor.run ~top_pages:top store))
  in
  let top_arg =
    Arg.(
      value
      & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"Hottest pages listed per (document, phase) row.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Tree-health report: per-document stats and clustering scores, fill-factor histogram, \
          proxy-chain and span quantiles, split-decision tallies, WAL write amplification, and \
          a page-heat breakdown.  Read-only.")
    Term.(const run $ store_arg $ top_arg)

let bench_diff_cmd =
  let run baseline_path current_path threshold json_out =
    let parse p = Natix_obs.Json.parse (read_file p) in
    let report =
      Natix_prof.Bench_diff.diff ~threshold_pct:threshold ~baseline:(parse baseline_path)
        ~current:(parse current_path) ()
    in
    Format.printf "%a@." Natix_prof.Bench_diff.pp report;
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Natix_obs.Json.to_string (Natix_prof.Bench_diff.to_json report));
      output_char oc '\n';
      close_out oc);
    if not (Natix_prof.Bench_diff.ok report) then exit 7
  in
  let baseline_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")
  in
  let current_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New bench JSON.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 10.
      & info [ "fail-threshold" ] ~docv:"PCT"
          ~doc:"Relative worsening (in percent) above which a cost figure is a regression.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the verdict as JSON.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench JSON reports metric by metric and fail (exit 7) on regressions \
          beyond the threshold or on result mismatches.  The reports are simulated-I/O \
          deterministic, so any difference is a real behaviour change.")
    Term.(const run $ baseline_arg $ current_arg $ threshold_arg $ json_out_arg)

let gen_cmd =
  let run prefix scale =
    let corpus = Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled scale) in
    List.iteri
      (fun i play ->
        let path = Printf.sprintf "%s-%02d.xml" prefix i in
        let oc = open_out path in
        output_string oc (Natix_xml.Xml_print.to_string ~decl:true play);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      corpus
  in
  let prefix_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PREFIX" ~doc:"Output file prefix.")
  in
  let scale_arg =
    Arg.(value & opt float 0.05 & info [ "scale" ] ~docv:"F" ~doc:"Corpus scale (1.0 = 37 plays).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate the synthetic Shakespeare-like corpus as XML files.")
    Term.(const run $ prefix_arg $ scale_arg)

(* ---- monitoring commands ------------------------------------------ *)

(* Drive the monitored workload: the queries file when given, a full
   document scan otherwise.  [cold] drops the buffer pool first so the
   probe measures physical I/O instead of re-reading a pool warmed by
   opening the store (the sim clock keeps running either way). *)
let run_probe ?(cold = false) sess queries jobs =
  if cold then Tree_store.clear_buffers (Natix.Session.store sess);
  match queries with
  | Some qf ->
    let outcome = Natix.Session.run_queries ~jobs sess (read_tasks qf) in
    List.iter
      (function Error e -> Printf.eprintf "natix: %s\n" (Error.to_string e) | Ok _ -> ())
      outcome.Natix_par.Par.results
  | None -> ignore (Natix.Session.scan_all ~jobs sess)

let cold_arg =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:"Drop the buffer pool before the probe, so it measures physical I/O.")

let mon_of sess =
  match Natix.Session.mon sess with
  | Some mon -> mon
  | None ->
    prerr_endline "natix: monitoring disabled for this session";
    exit 2

let sim_now sess =
  (Tree_store.io_stats (Natix.Session.store sess)).Natix_store.Io_stats.sim_ms

let write_out out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of standard output.")

let top_cmd =
  (* --serve: the dispatcher's own counters come over the wire through
     Api.Server_stats — the same remote surface a monitoring agent would
     poll — while SLO windows and the slow log read server-side. *)
  let run_serve root tenant queries jobs slow_ms =
    serve_traced ~root ~tenant ~jobs
      ~trace:{ Natix_server.Server.default_trace with slow_ms }
      queries
      (fun server conn ->
        let s =
          match Natix_server.Server.Loopback.call conn Natix.Api.Server_stats with
          | Natix.Api.Server_statted s -> s
          | r ->
            Printf.eprintf "natix: server_stats: %s\n"
              (Format.asprintf "%a" Natix.Api.pp_response r);
            exit 2
        in
        Printf.printf "natix top --serve %s  (tenant %s)\n" root tenant;
        Printf.printf
          "dispatcher: served %d  shed %d  queued %d  running %d  max-queue %d  (jobs %d, \
           inflight cap %d, queue depth %d)\n"
          s.Natix.Api.served s.Natix.Api.shed s.Natix.Api.queued s.Natix.Api.running
          s.Natix.Api.max_queue s.Natix.Api.jobs s.Natix.Api.max_inflight
          s.Natix.Api.queue_depth;
        let reports = Natix_server.Server.trace_reports server in
        let at_ms =
          List.fold_left
            (fun acc (r : Natix_trace.Trace.report) ->
              Float.max acc (r.Natix_trace.Trace.submitted_ms +. r.Natix_trace.Trace.dur_ms))
            0. reports
        in
        Printf.printf "%-24s %8s %10s %10s %10s %10s %8s %s\n" "TENANT" "REQS" "P50-MS"
          "P95-MS" "P99-MS" "TARGET" "BREACH" "STATE";
        List.iter
          (fun (st : Natix_mon.Slo.stat) ->
            let q = function None -> "-" | Some v -> Printf.sprintf "%.2f" v in
            Printf.printf "%-24s %8d %10s %10s %10s %10s %8d %s\n" st.Natix_mon.Slo.tenant
              st.Natix_mon.Slo.count (q st.Natix_mon.Slo.p50_ms) (q st.Natix_mon.Slo.p95_ms)
              (q st.Natix_mon.Slo.p99_ms) (q st.Natix_mon.Slo.target_ms)
              st.Natix_mon.Slo.breaches
              (if st.Natix_mon.Slo.breached then "OVER" else "ok"))
          (Natix_server.Server.slo_snapshot server ~at_ms);
        match Natix_server.Server.slow_reports server with
        | [] -> ()
        | slow ->
          Printf.printf "slow requests (>= %.2f sim-ms): %d\n" slow_ms (List.length slow);
          List.iter
            (fun (r : Natix_trace.Trace.report) ->
              Printf.printf "  %s %s %s  %.2fms\n" r.Natix_trace.Trace.trace_id
                r.Natix_trace.Trace.kind r.Natix_trace.Trace.detail r.Natix_trace.Trace.dur_ms)
            slow)
  in
  let run store_path queries jobs cold n serve tenant slow_ms =
    if serve then run_serve store_path tenant queries jobs slow_ms
    else begin
    let open Natix_mon in
    let sess = open_session store_path in
    run_probe ~cold sess queries jobs;
    let mon = mon_of sess in
    let at_ms = sim_now sess in
    let snap = Mon.metrics_snapshot mon ~at_ms in
    let series name = List.find_opt (fun s -> s.Registry.name = name) snap.Registry.series in
    let wsum name =
      match series name with None -> 0. | Some s -> s.Registry.window.Window.sum
    in
    let fixes = wsum "fixes" in
    let hit_ratio = if fixes > 0. then wsum "fix_hits" /. fixes else 1. in
    Printf.printf "natix top — %s  (sim clock %.1f ms, window %.0f ms)\n" store_path at_ms
      snap.Registry.span_ms;
    Printf.printf "window: reads %.0f  writes %.0f  wal bytes %.0f  fixes %.0f  hit ratio %.3f\n"
      (wsum "reads") (wsum "writes") (wsum "wal_bytes") fixes hit_ratio;
    (match series "query_sim_ms" with
    | Some { Registry.quantiles = Some (p50, p95, p99); _ } ->
      Printf.printf "query sim-ms: p50 %.2f  p95 %.2f  p99 %.2f\n" p50 p95 p99
    | _ -> ());
    let accounts =
      List.sort
        (fun a b -> compare b.Account.win_sim_ms.Window.sum a.Account.win_sim_ms.Window.sum)
        (Mon.accounts mon ~at_ms)
    in
    Printf.printf "%-24s %10s %8s %12s %10s %5s %s\n" "DOC" "READS" "RD/WIN" "SIM-MS" "MS/WIN"
      "PIN" "BUDGET";
    List.iteri
      (fun i (d : Account.doc_stats) ->
        if i < n then
          Printf.printf "%-24s %10d %8.0f %12.2f %10.2f %5d %s\n" d.Account.doc d.reads_total
            d.win_reads.Window.sum d.sim_ms_total d.win_sim_ms.Window.sum d.pinned_peak
            (match d.breached with [] -> "-" | l -> "OVER:" ^ String.concat "," l))
      accounts;
    Natix.Session.close ~commit:false sess
    end
  in
  let n_arg =
    Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"Documents listed (busiest first).")
  in
  let slow_arg =
    Arg.(
      value & opt float infinity
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"($(b,--serve)) Slow-request log threshold in simulated milliseconds.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run a workload (--queries, or a full scan) against a monitored session and print a \
          top-style report: windowed store rates, moving query-latency quantiles, and the \
          busiest documents by simulated time.  With $(b,--serve ROOT), drive the workload \
          through the multi-tenant dispatcher instead and report its counters (fetched over \
          the wire via Server_stats), per-tenant latency SLO windows, and the slow-request \
          log.")
    Term.(
      const run $ store_arg $ queries_arg $ jobs_arg $ cold_arg $ n_arg $ serve_flag
      $ tenant_arg $ slow_arg)

let mon_export_cmd =
  let run store_path queries jobs cold format out =
    let sess = open_session store_path in
    run_probe ~cold sess queries jobs;
    let mon = mon_of sess in
    let at_ms = sim_now sess in
    let text =
      match format with
      | `Prom -> Natix_mon.Mon.export_prometheus mon ~at_ms
      | `Json -> Natix_obs.Json.to_string (Natix_mon.Mon.export_json mon ~at_ms) ^ "\n"
    in
    write_out out text;
    Natix.Session.close ~commit:false sess
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("prometheus", `Prom); ("json", `Json) ]) `Prom
      & info [ "format" ] ~docv:"FMT" ~doc:"$(b,prometheus) text or a $(b,json) snapshot.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Run a workload and export the monitor's sliding-window metrics.  Deterministic \
          workloads export byte-identical snapshots (everything runs on the simulated clock).")
    Term.(const run $ store_arg $ queries_arg $ jobs_arg $ cold_arg $ format_arg $ out_arg)

let mon_capture_cmd =
  let run store_path queries jobs out =
    let sess = open_session store_path in
    let tasks = read_tasks queries in
    let meta, ops =
      Natix_mon.Replay.capture ~jobs ~store_path (Natix.Session.store sess) tasks
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Natix_obs.Json.to_string (Natix_mon.Recorder.meta_to_json meta));
    Buffer.add_char buf '\n';
    List.iter
      (fun op ->
        Buffer.add_string buf (Natix_obs.Json.to_string (Natix_mon.Recorder.op_to_json op));
        Buffer.add_char buf '\n')
      ops;
    write_out out (Buffer.contents buf);
    Printf.eprintf "captured %d op(s); %d read(s), %d write(s), %.2f sim-ms\n" (List.length ops)
      meta.Natix_mon.Recorder.reads meta.Natix_mon.Recorder.writes
      meta.Natix_mon.Recorder.sim_ms;
    Natix.Session.close ~commit:false sess
  in
  let queries_required =
    Arg.(
      required
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Query workload: one $(b,DOC PATH) task per line ($(b,#) comments).")
  in
  Cmd.v
    (Cmd.info "capture"
       ~doc:
         "Cold-run a query workload (buffers cleared, I/O counters zeroed) and write a replay \
          dump: per-op result digests plus exact whole-run I/O totals.  `natix replay` verifies \
          a store still reproduces it byte for byte.")
    Term.(const run $ store_arg $ queries_required $ jobs_arg $ out_arg)

let mon_dump_cmd =
  let run store_path queries jobs cold out =
    let sess = open_session store_path in
    run_probe ~cold sess queries jobs;
    ignore (mon_of sess);
    (match out with
    | None -> Natix.Session.dump_flight sess stdout
    | Some path ->
      let oc = open_out path in
      Natix.Session.dump_flight sess oc;
      close_out oc);
    Natix.Session.close ~commit:false sess
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Run a workload and flush the session's flight ring — the most recent operations with \
          their I/O deltas and outcomes — as JSONL.  (The ring is also flushed automatically to \
          natix-flight.jsonl when the CLI dies on a typed error.)")
    Term.(const run $ store_arg $ queries_arg $ jobs_arg $ cold_arg $ out_arg)

let mon_cmd =
  Cmd.group
    (Cmd.info "mon" ~doc:"Monitor surfaces: metrics export, replay capture, flight-ring dump.")
    [ mon_export_cmd; mon_capture_cmd; mon_dump_cmd ]

let replay_cmd =
  let run dump_path store_override jobs =
    let meta, ops = Natix_mon.Recorder.load dump_path in
    let store_path =
      match (store_override, meta.Natix_mon.Recorder.store) with
      | Some p, _ -> p
      | None, Some p -> p
      | None, None ->
        prerr_endline "natix: dump names no store file; pass --store";
        exit 2
    in
    let sess = open_session store_path in
    (* Replays via the Api command layer (Session.replay) so the dump is
       verified against the same execution path a server would use. *)
    let report = Natix.Session.replay ?jobs sess meta ops in
    let r_reads, r_writes, r_total = report.Natix_mon.Replay.replayed_io in
    let c_reads, c_writes, c_total = report.Natix_mon.Replay.captured_io in
    Printf.printf "replayed %d op(s) (%d skipped: not replayable)\n"
      report.Natix_mon.Replay.replayed report.Natix_mon.Replay.skipped;
    List.iter
      (fun (m : Natix_mon.Replay.mismatch) ->
        Printf.printf "MISMATCH op %d %s %s\n  captured: %s\n  replayed: %s\n" m.seq
          (Option.value m.doc ~default:"-")
          m.detail m.expected m.got)
      report.Natix_mon.Replay.mismatches;
    Printf.printf "io: captured %d+%d=%d, replayed %d+%d=%d (%s)\n" c_reads c_writes c_total
      r_reads r_writes r_total
      (if not report.Natix_mon.Replay.io_checked then "not compared: warm or partial dump"
       else if report.Natix_mon.Replay.io_ok then "equal"
       else "DIFFERENT");
    Printf.printf "sim-ms: captured %.2f, replayed %.2f (informational)\n"
      report.Natix_mon.Replay.captured_sim_ms report.Natix_mon.Replay.replayed_sim_ms;
    Natix.Session.close ~commit:false sess;
    if Natix_mon.Replay.ok report then print_endline "replay ok"
    else begin
      print_endline "replay FAILED";
      exit 8
    end
  in
  let dump_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP" ~doc:"Replay dump (JSONL).")
  in
  let store_override =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"STORE" ~doc:"Replay against this store instead of the dump's.")
  in
  let jobs_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains (default: the dump's job count).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a captured workload and verify the store reproduces it: per-op outcome, \
          row count and result digest must be byte-identical, and for cold captures the \
          read/write/total I/O counts must match exactly (they are schedule-independent, so \
          this holds at any --jobs).  Exits 8 on any divergence.")
    Term.(const run $ dump_arg $ store_override $ jobs_opt)

let checkpoint_cmd =
  let run store_path =
    let sess = open_session store_path in
    (match Natix.Session.exec sess Natix.Api.Checkpoint with
    | Natix.Api.Checkpointed -> print_endline "checkpointed"
    | Natix.Api.Err e -> fail_error e
    | _ -> assert false);
    Natix.Session.close ~commit:false sess
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Force a durable checkpoint: flush dirty pages, fsync, and truncate the write-ahead \
          log.")
    Term.(const run $ store_arg)

let serve_cmd =
  let run root port jobs inflight queue_depth =
    let registry = Natix_server.Registry.create ~root () in
    let config =
      {
        Natix_server.Server.default_config with
        jobs;
        max_inflight = inflight;
        queue_depth;
      }
    in
    let server = Natix_server.Server.create ~config registry in
    Printf.printf "natix: serving stores under %s on 127.0.0.1:%d (%d worker domain(s))\n%!" root
      port jobs;
    Sys.catch_break true;
    (try Natix_server.Server.serve server ~port ()
     with Sys.Break -> prerr_endline "\nnatix: interrupted; draining in-flight requests");
    Natix_server.Server.shutdown server;
    Natix_server.Registry.close_all registry
  in
  let root_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"ROOT"
          ~doc:"Directory of stores; tenant $(i,NAME) maps to $(i,ROOT)/$(i,NAME).natix.")
  in
  let port_arg =
    Arg.(value & opt int 7733 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let serve_jobs =
    Arg.(
      value & opt int 4
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains dispatching requests (0 = execute inline on the connection).")
  in
  let inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "inflight" ] ~docv:"N"
          ~doc:"Admission limit: running + queued requests before shedding.")
  in
  let queue_arg =
    Arg.(
      value & opt int 32
      & info [ "queue-depth" ] ~docv:"N" ~doc:"Per-worker queue bound before shedding.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve many stores from one process over a length-prefixed, CRC-framed binary \
          protocol.  Stores open lazily on first use; overload sheds requests with a typed \
          Overloaded reply instead of queueing unboundedly.")
    Term.(const run $ root_arg $ port_arg $ serve_jobs $ inflight_arg $ queue_arg)

let () =
  let info =
    Cmd.info "natix" ~version:"1.0.0"
      ~doc:"A native XML repository with tree-aware record splitting (Kanne & Moerkotte, ICDE 2000)."
  in
  (* Storage-layer failures exit with distinct codes instead of a
     backtrace: 3 = page-level corruption, 4 = index corruption, 5 =
     buffer exhaustion, 6 = unrecoverable transient read failure,
     7 = bench regression, 8 = replay divergence.  Every typed-error
     path also flushes the flight recorder (see [dump_flight_on_error]). *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             load_cmd; bulkload_cmd; list_cmd; cat_cmd; query_cmd; scan_cmd; validate_cmd;
             stats_cmd; check_cmd; checkpoint_cmd; delete_cmd; gen_cmd; trace_cmd; doctor_cmd;
             bench_diff_cmd; fsck_cmd; recover_cmd; serve_cmd; top_cmd; mon_cmd; replay_cmd;
           ])
    with
    | Error.Error e ->
      (* Typed failures raised from inside lazy result sequences (the
         [result]-returning entry points already handled the eager ones). *)
      Printf.eprintf "natix: %s\n" (Error.to_string e);
      dump_flight_on_error ();
      Error.exit_code e
    | Natix_store.Disk.Bad_page { page; reason } ->
      if page < 0 then Printf.eprintf "natix: bad superblock: %s\n" reason
      else Printf.eprintf "natix: bad page %d: %s (try `natix recover`)\n" page reason;
      dump_flight_on_error ();
      3
    | Natix_store.Btree.Corrupt reason ->
      Printf.eprintf "natix: corrupt index: %s (try `natix fsck`)\n" reason;
      dump_flight_on_error ();
      4
    | Natix_store.Buffer_pool.All_frames_pinned ->
      prerr_endline "natix: buffer pool exhausted (all frames pinned); raise the buffer size";
      dump_flight_on_error ();
      5
    | Natix_store.Faulty_disk.Read_error page ->
      Printf.eprintf "natix: page %d unreadable after retries\n" page;
      dump_flight_on_error ();
      6
    | e ->
      (* Anything unexpected — a recovery pass dying on a corrupt log, an
         assertion in the storage engine — still flushes the flight
         recorder before the backtrace, so the last moments before the
         failure are on disk next to it. *)
      dump_flight_on_error ();
      raise e
  in
  exit code
