(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§4, Figures 9-14) plus the ablations DESIGN.md calls out.

   For each page size and each of the four series (1:1/1:n ×
   incremental/append) a store is built once; Figure 9 reports the build,
   Figures 10-13 the four retrieval operations (buffer cleared before
   each), Figure 14 the bytes on disk.  All times are simulated
   milliseconds under the DCAS-34330W I/O model — see EXPERIMENTS.md for
   the comparison against the paper's curves.

   `--bechamel` additionally runs wall-clock micro-benchmarks (one
   Bechamel Test.make per figure) on a reduced corpus. *)

open Natix_core
open Natix_workload
module Io_stats = Natix_store.Io_stats

let default_page_sizes = [ 2048; 4096; 8192; 16384; 24576; 32768 ]

type cell = {
  page_size : int;
  series : Harness.series;
  built : Harness.built;
  traversal : Io_stats.t;
  q1 : Io_stats.t;
  q2 : Io_stats.t;
  q3 : Io_stats.t;
}

(* --mon: attach the always-on monitor to every figure build and
   measurement, turning the gated bench into the telemetry-overhead
   experiment.  The monitor performs no I/O on the measured disk and the
   clock is simulated, so every simulated figure must come out
   byte-identical with it on; CI enforces that by diffing a --mon run
   against the unmonitored baseline. *)
let mon_enabled = ref false

let mon_obs () =
  if not !mon_enabled then None
  else begin
    let obs = Natix_obs.Obs.create () in
    ignore (Natix_mon.Mon.attach obs : Natix_mon.Mon.t);
    Some obs
  end

let build_cell ~check page_size series corpus =
  let built = Harness.build ?obs:(mon_obs ()) ~page_size series corpus in
  if check then
    List.iter (fun d -> Tree_store.check_document built.Harness.store d) built.Harness.docs;
  let docs = built.Harness.docs and store = built.Harness.store in
  let _, traversal = Harness.measure built (fun () -> Queries.full_traversal store ~docs) in
  let _, q1 = Harness.measure built (fun () -> Queries.q1 store ~docs) in
  let _, q2 = Harness.measure built (fun () -> Queries.q2 store ~docs) in
  let _, q3 = Harness.measure built (fun () -> Queries.q3 store ~docs) in
  { page_size; series; built; traversal; q1; q2; q3 }

let series_order = Harness.all_series

let print_table ~title ~unit rows value =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-10s" "page";
  List.iter (fun s -> Printf.printf "%18s" (Harness.series_name s)) series_order;
  Printf.printf "    (%s)\n" unit;
  List.iter
    (fun (page_size, cells) ->
      Printf.printf "%-10d" page_size;
      List.iter
        (fun s ->
          let cell = List.find (fun c -> c.series = s) cells in
          Printf.printf "%18s" (value cell))
        series_order;
      print_newline ())
    rows

let fmt_ms ms = Printf.sprintf "%.0f" ms
let fmt_io (io : Io_stats.t) = fmt_ms io.Io_stats.sim_ms

let figure_title = function
  | 9 -> "Figure 9 - Insertion (simulated ms)"
  | 10 -> "Figure 10 - Full tree traversal (simulated ms)"
  | 11 -> "Figure 11 - Query 1: leaf selection in a subtree (simulated ms)"
  | 12 -> "Figure 12 - Query 2: small contiguous fragments (simulated ms)"
  | 13 -> "Figure 13 - Query 3: single path per document (simulated ms)"
  | 14 -> "Figure 14 - Space requirements (bytes on disk)"
  | n -> Printf.sprintf "Figure %d" n

let print_figure rows n =
  let value =
    match n with
    | 9 -> fun c -> fmt_io c.built.Harness.build_io
    | 10 -> fun c -> fmt_io c.traversal
    | 11 -> fun c -> fmt_io c.q1
    | 12 -> fun c -> fmt_io c.q2
    | 13 -> fun c -> fmt_io c.q3
    | 14 -> fun c -> string_of_int c.built.Harness.disk_bytes
    | _ -> fun _ -> "-"
  in
  print_table ~title:(figure_title n) ~unit:(if n = 14 then "bytes" else "sim ms") rows value

let print_aux rows =
  print_table ~title:"Auxiliary - build page I/O" ~unit:"reads+writes" rows (fun c ->
      Printf.sprintf "%d+%d" c.built.Harness.build_io.Io_stats.reads
        c.built.Harness.build_io.Io_stats.writes);
  print_table ~title:"Auxiliary - record splits during build" ~unit:"splits" rows (fun c ->
      string_of_int c.built.Harness.splits)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_split_params corpus =
  Printf.printf "\nAblation - split tolerance and split target (8K pages, 1:n append)\n";
  Printf.printf "%-14s %-12s %12s %10s %14s %12s\n" "tolerance" "target" "insert-ms" "splits"
    "disk-bytes" "q2-ms";
  let page_size = 8192 in
  List.iter
    (fun (tolerance, target) ->
      let config =
        {
          (Config.default ()) with
          Config.page_size;
          split_tolerance = tolerance;
          split_target = target;
        }
      in
      let store = Tree_store.in_memory ~config () in
      let docs = List.mapi (fun i p -> (Printf.sprintf "play-%d" i, p)) corpus in
      let io = Tree_store.io_stats store in
      let before = Io_stats.copy io in
      Loader.load_collection store docs ~order:Loader.Preorder;
      Tree_store.sync store;
      let build = Io_stats.diff (Io_stats.copy io) before in
      let doc_names = List.map fst docs in
      Tree_store.clear_buffers store;
      let before = Io_stats.copy io in
      ignore (Queries.q2 store ~docs:doc_names);
      let q2 = Io_stats.diff (Io_stats.copy io) before in
      Printf.printf "%-14.3f %-12.2f %12.0f %10d %14d %12.0f\n" tolerance target
        build.Io_stats.sim_ms (Tree_store.split_count store) (Stats.disk_bytes store)
        q2.Io_stats.sim_ms)
    [ (0.0, 0.5); (0.05, 0.5); (0.1, 0.5); (0.25, 0.5); (0.1, 0.25); (0.1, 0.75) ]

let ablation_hybrid corpus =
  Printf.printf
    "\nAblation - HyperStorM-style hybrid matrix (8K pages, append) vs 1:1 and native\n";
  Printf.printf "%-22s %12s %14s %12s %12s\n" "matrix" "insert-ms" "disk-bytes" "q1-ms" "q3-ms";
  let page_size = 8192 in
  (* The Split Matrix is mutable and shared with the store, so entries can
     be added after creation, once the store's name pool exists. *)
  let hybrid store m =
    (* Upper levels standalone (as in HyperStorM), speech subtrees flat. *)
    List.iter
      (fun (p, c) ->
        Split_matrix.set m ~parent:(Tree_store.label store p) ~child:(Tree_store.label store c)
          Split_matrix.Standalone)
      [ ("PLAY", "ACT"); ("ACT", "SCENE"); ("SCENE", "SPEECH"); ("PLAY", "PERSONAE") ]
  in
  List.iter
    (fun (name, default, configure) ->
      let matrix = Split_matrix.create ~default () in
      let config = { (Config.default ()) with Config.page_size; matrix } in
      let store = Tree_store.in_memory ~config () in
      configure store matrix;
      let docs = List.mapi (fun i p -> (Printf.sprintf "play-%d" i, p)) corpus in
      let io = Tree_store.io_stats store in
      let before = Io_stats.copy io in
      Loader.load_collection store docs ~order:Loader.Preorder;
      Tree_store.sync store;
      let build = Io_stats.diff (Io_stats.copy io) before in
      let doc_names = List.map fst docs in
      let run q =
        Tree_store.clear_buffers store;
        let before = Io_stats.copy io in
        ignore (q store ~docs:doc_names);
        (Io_stats.diff (Io_stats.copy io) before).Io_stats.sim_ms
      in
      let q1 = run Queries.q1 in
      let q3 = run Queries.q3 in
      Printf.printf "%-22s %12.0f %14d %12.0f %12.0f\n" name build.Io_stats.sim_ms
        (Stats.disk_bytes store) q1 q3)
    [
      ("1:1 (all standalone)", Split_matrix.Standalone, fun _ _ -> ());
      ("hybrid (HyperStorM)", Split_matrix.Cluster, hybrid);
      ("1:n (native)", Split_matrix.Other, fun _ _ -> ());
    ]

let ablation_flat corpus =
  Printf.printf "\nAblation - flat-stream BLOB baseline vs native (8K pages)\n";
  Printf.printf "%-14s %14s %14s %16s %16s\n" "store" "load-ms" "traverse-ms" "100-updates-ms"
    "disk-bytes";
  let page_size = 8192 in
  (* Flat: one blob per play. *)
  let disk = Natix_store.Disk.in_memory ~page_size () in
  let pool = Natix_store.Buffer_pool.create ~disk ~bytes:(2 * 1024 * 1024) () in
  let rm = Natix_store.Record_manager.create (Natix_store.Segment.create pool) in
  let bs = Natix_flat.Blob_store.create rm in
  let stats = Natix_store.Disk.stats disk in
  let before = Io_stats.copy stats in
  let flat_docs =
    List.mapi
      (fun i p -> Natix_flat.Flat_document.store bs ~name:(Printf.sprintf "play-%d" i) p)
      corpus
  in
  Natix_store.Buffer_pool.flush pool;
  let load_ms = (Io_stats.diff (Io_stats.copy stats) before).Io_stats.sim_ms in
  Natix_store.Buffer_pool.clear pool;
  let before = Io_stats.copy stats in
  List.iter (fun d -> ignore (Natix_flat.Flat_document.load bs d)) flat_docs;
  let traverse_ms = (Io_stats.diff (Io_stats.copy stats) before).Io_stats.sim_ms in
  Natix_store.Buffer_pool.clear pool;
  let per_doc = max 1 (100 / List.length flat_docs) in
  let before = Io_stats.copy stats in
  List.iter
    (fun d ->
      let offsets = Natix_flat.Flat_document.text_offsets bs d ~limit:per_doc in
      List.iter
        (fun at -> Natix_flat.Flat_document.splice_text bs d ~at " update")
        (List.rev (List.sort Int.compare offsets)))
    flat_docs;
  Natix_store.Buffer_pool.flush pool;
  let update_ms = (Io_stats.diff (Io_stats.copy stats) before).Io_stats.sim_ms in
  Printf.printf "%-14s %14.0f %14.0f %16.0f %16d\n" "flat (BLOB)" load_ms traverse_ms update_ms
    (Natix_store.Disk.size_bytes disk);
  (* Native for comparison: same corpus, 100 scattered text inserts. *)
  let built =
    Harness.build ~page_size { Harness.matrix = Native; order = Loader.Preorder } corpus
  in
  let store = built.Harness.store in
  let _, upd =
    Harness.measure built (fun () ->
        (* The same number of scattered updates as the flat side; the
           navigation to each update position is part of the measurement
           (handles from before the buffer clear would be stale anyway).
           Unlike the flat store, native navigation reads only the path
           down to each scene, not the whole document. *)
        let count = ref 0 in
        List.iter
          (fun d ->
            match Cursor.of_document store d with
            | None -> ()
            | Some root ->
              Seq.iter
                (fun act ->
                  if !count < 100 then begin
                    match Cursor.children_named act "SCENE" () with
                    | Seq.Cons (scene, _) ->
                      incr count;
                      ignore
                        (Tree_store.insert_node store
                           (Tree_store.First_under (Cursor.node scene))
                           (Tree_store.Text "an update line"))
                    | Seq.Nil -> ()
                  end)
                (Cursor.children_named root "ACT"))
          built.Harness.docs;
        Tree_store.sync store)
  in
  let _, trav =
    Harness.measure built (fun () -> Queries.full_traversal store ~docs:built.Harness.docs)
  in
  Printf.printf "%-14s %14.0f %14.0f %16.0f %16d\n" "native (1:n)"
    built.Harness.build_io.Io_stats.sim_ms trav.Io_stats.sim_ms upd.Io_stats.sim_ms
    built.Harness.disk_bytes

let ablation_buffer corpus =
  Printf.printf
    "\nAblation - buffer size (8K pages, 1:n incremental): the 2 MB working-set cliff\n";
  Printf.printf "%-14s %14s %12s %12s\n" "buffer" "insert-ms" "reads" "writes";
  List.iter
    (fun buffer_bytes ->
      let built =
        Harness.build ~page_size:8192 ~buffer_bytes
          { Harness.matrix = Harness.Native; order = Loader.Bfs_binary }
          corpus
      in
      Printf.printf "%-14s %14.0f %12d %12d\n"
        (Printf.sprintf "%dK" (buffer_bytes / 1024))
        built.Harness.build_io.Io_stats.sim_ms built.Harness.build_io.Io_stats.reads
        built.Harness.build_io.Io_stats.writes)
    [ 256 * 1024; 512 * 1024; 1024 * 1024; 2 * 1024 * 1024; 4 * 1024 * 1024; 8 * 1024 * 1024 ]

let ablation_merge corpus =
  Printf.printf
    "\nAblation - dynamic re-clustering on deletion (8K pages, 1:n, delete 2 of 3 speeches)\n";
  Printf.printf "%-18s %10s %10s %12s %14s %12s\n" "merge_threshold" "records" "merges"
    "disk-bytes" "traversal-ms" "depth";
  let page_size = 8192 in
  List.iter
    (fun merge_threshold ->
      let built =
        Harness.build ~page_size ~merge_threshold
          { Harness.matrix = Harness.Native; order = Loader.Preorder }
          corpus
      in
      let store = built.Harness.store in
      (* Delete two of every three speeches, document by document. *)
      List.iter
        (fun doc ->
          let speeches = Path.query store ~doc "//SPEECH" in
          List.iteri
            (fun i c -> if i mod 3 <> 0 then Tree_store.delete_node store (Cursor.node c))
            speeches)
        built.Harness.docs;
      Tree_store.sync store;
      let agg =
        List.fold_left
          (fun (records, depth) doc ->
            let s = Stats.document store doc in
            (records + s.Stats.records, max depth s.Stats.record_tree_depth))
          (0, 0) built.Harness.docs
      in
      let records, depth = agg in
      let _, trav =
        Harness.measure built (fun () ->
            Queries.full_traversal store ~docs:built.Harness.docs)
      in
      Printf.printf "%-18.2f %10d %10d %12d %14.0f %12d\n" merge_threshold records
        (Tree_store.merge_count store) (Stats.disk_bytes store) trav.Io_stats.sim_ms depth)
    [ 0.0; 0.25; 0.5; 0.8 ]

let ablation_scan corpus =
  Printf.printf "\nAblation - typed-element scans (paper 4.4.6), 8K pages\n";
  Printf.printf "%-14s %-10s %16s %16s %10s\n" "store" "element" "traversal-ms" "index-scan-ms"
    "hits";
  let page_size = 8192 in
  List.iter
    (fun (name, series) ->
      let built = Harness.build ~page_size series corpus in
      let store = built.Harness.store in
      let idx = Element_index.create store ~name:"elements" in
      Element_index.rebuild idx;
      Tree_store.sync store;
      (* SPEAKER is dense (in almost every record); SCNDESCR is one node
         per play -- the selectivity spectrum of an index. *)
      List.iter
        (fun element ->
          let label = Tree_store.label store element in
          let via_traversal, t_io =
            Harness.measure built (fun () ->
                List.fold_left
                  (fun acc doc ->
                    match Cursor.of_document store doc with
                    | None -> acc
                    | Some root ->
                      Seq.fold_left
                        (fun acc c ->
                          if Cursor.is_element c && Cursor.name c = element then acc + 1 else acc)
                        acc (Cursor.descendants_or_self root))
                  0 built.Harness.docs)
          in
          let via_index, i_io =
            Harness.measure built (fun () -> List.length (Element_index.scan idx label))
          in
          assert (via_traversal = via_index);
          Printf.printf "%-14s %-10s %16.0f %16.0f %10d\n" name element t_io.Io_stats.sim_ms
            i_io.Io_stats.sim_ms via_index)
        [ "SPEAKER"; "SCNDESCR" ])
    [
      ("1:1 append", { Harness.matrix = Harness.One_to_one; order = Loader.Preorder });
      ("1:n append", { Harness.matrix = Harness.Native; order = Loader.Preorder });
    ]

let ablation_wal corpus =
  Printf.printf
    "\nAblation - WAL write amplification (8K pages, file-backed, 1:n append)\n";
  Printf.printf "%-22s %12s %12s %16s %10s %10s\n" "checkpoint every" "data-MB" "wal-MB"
    "amplification" "commits" "appends";
  let page_size = 8192 in
  let plays = List.length corpus in
  List.iter
    (fun every ->
      let path = Filename.temp_file "natix_bench" ".db" in
      let config = { (Config.default ()) with Config.page_size } in
      let disk = Natix_store.Disk.on_file ~page_size path in
      let store = Tree_store.open_store ~config disk in
      let commits = ref 0 in
      let checkpoint () =
        Tree_store.checkpoint store;
        incr commits
      in
      List.iteri
        (fun i play ->
          ignore (Loader.load store ~name:(Printf.sprintf "play-%d" i) play);
          if (i + 1) mod every = 0 then checkpoint ())
        corpus;
      if plays mod every <> 0 then checkpoint ();
      let wal = Option.get (Natix_store.Buffer_pool.wal (Tree_store.buffer_pool store)) in
      let wal_bytes = Natix_store.Wal.bytes_logged wal in
      let appends = Natix_store.Wal.appends wal in
      let data_bytes = (Natix_store.Disk.stats disk).Io_stats.writes * page_size in
      Tree_store.close ~commit:false store;
      Sys.remove path;
      let wal_path = Natix_store.Recovery.wal_path path in
      if Sys.file_exists wal_path then Sys.remove wal_path;
      Printf.printf "%-22s %12.2f %12.2f %16.3f %10d %10d\n"
        (Printf.sprintf "%d play(s)" every)
        (float_of_int data_bytes /. 1e6)
        (float_of_int wal_bytes /. 1e6)
        (float_of_int (data_bytes + wal_bytes) /. float_of_int (max 1 data_bytes))
        !commits appends)
    (List.sort_uniq compare [ 1; max 1 (plays / 2); plays ])

(* ------------------------------------------------------------------ *)
(* Machine-readable export                                             *)

module J = Natix_obs.Json

(* The per-operation I/O objects reuse [Io_stats.pp_json], so the JSON
   shape is identical wherever an I/O delta is reported. *)
let io_json io = J.parse (Format.asprintf "%a" Io_stats.pp_json io)

(* ------------------------------------------------------------------ *)
(* Query-engine bench: planned vs naive evaluation, index seeding, and
   the scan-optimised buffer pool (read-ahead + segmented LRU).  Run on
   its own with --query-bench (the CI smoke job). *)

let qb_series = { Harness.matrix = Harness.Native; order = Loader.Preorder }

let qb_count engine ~docs ~naive path =
  List.fold_left
    (fun acc doc ->
      let run = if naive then Natix_query.Engine.query_naive else Natix_query.Engine.query in
      match run engine ~doc path with
      | Ok seq -> acc + Seq.length seq
      | Error e -> failwith (Error.to_string e))
    0 docs

(* Engine over a harness store, with the element index built (the planner
   only considers index seeding when one is attached). *)
let qb_engine built =
  let store = built.Harness.store in
  let idx = Element_index.create store ~name:"elements" in
  Element_index.rebuild idx;
  Tree_store.sync store;
  Natix_query.Engine.create ~index:idx store

let qb_measure_pair built engine ~docs (name, path) =
  let planned_hits, p = Harness.measure built (fun () -> qb_count engine ~docs ~naive:false path) in
  let naive_hits, n = Harness.measure built (fun () -> qb_count engine ~docs ~naive:true path) in
  if planned_hits <> naive_hits then
    failwith (Printf.sprintf "%s: planned %d hits <> naive %d hits" name planned_hits naive_hits);
  (planned_hits, p, n)

let qb_planned_vs_naive corpus =
  Printf.printf
    "\nQuery bench - planned (lazy, index-aware) vs naive (strict navigation); 8K pages, 1:n \
     append, cold buffers\n";
  Printf.printf "%-8s %-28s %8s | %9s %9s | %9s %9s\n" "query" "path" "hits" "plan-rd" "plan-ms"
    "naive-rd" "naive-ms";
  let built = Harness.build ?obs:(mon_obs ()) ~page_size:8192 qb_series corpus in
  let engine = qb_engine built in
  let docs = built.Harness.docs in
  List.map
    (fun (name, path) ->
      let hits, p, n = qb_measure_pair built engine ~docs (name, path) in
      Printf.printf "%-8s %-28s %8d | %9d %9.0f | %9d %9.0f\n" name path hits p.Io_stats.reads
        p.Io_stats.sim_ms n.Io_stats.reads n.Io_stats.sim_ms;
      (name, path, hits, p, n))
    [
      ("q1", "//ACT[3]/SCENE[2]//SPEAKER");
      ("q2", "/ACT/SCENE/SPEECH[1]");
      ("q3", "/ACT[1]/SCENE[1]/SPEECH[1]");
    ]

let qb_index_seed corpus =
  Printf.printf
    "\nQuery bench - index seeding on one play (selective SCNDESCR vs dense SPEAKER)\n";
  Printf.printf "%-28s %-12s %8s | %9s %9s\n" "path" "access" "hits" "plan-rd" "naive-rd";
  let built = Harness.build ?obs:(mon_obs ()) ~page_size:8192 qb_series [ List.hd corpus ] in
  let engine = qb_engine built in
  let docs = built.Harness.docs in
  let doc = List.hd docs in
  List.map
    (fun path ->
      let plan =
        match Natix_query.Engine.plan engine ~doc path with
        | Ok p -> p
        | Error e -> failwith (Error.to_string e)
      in
      let access = if Natix_query.Plan.uses_index plan then "index-seed" else "nav" in
      let hits, p, n = qb_measure_pair built engine ~docs (path, path) in
      Printf.printf "%-28s %-12s %8d | %9d %9d\n" path access hits p.Io_stats.reads
        n.Io_stats.reads;
      (path, access, hits, p, n))
    [ "//SCNDESCR"; "//SPEAKER" ]

(* Protocol: warm the per-document root paths (q3), run the full
   traversal (a scan), then re-run q3 and read the pool's hit ratio --
   did the scan evict the working set?  The 512K buffer is deliberately
   much smaller than the store so eviction policy matters. *)
let qb_scan_pool corpus =
  Printf.printf
    "\nQuery bench - scan-optimised pool (512K buffer): q3 warm-up, cold traversal, q3 re-run\n";
  Printf.printf "%-24s %9s %9s %9s | %9s %13s\n" "pool" "trav-rd" "ra-pages" "trav-ms" "q3-ms"
    "q3-hit-ratio";
  List.map
    (fun (name, read_ahead, scan_resistant) ->
      let built =
        Harness.build ?obs:(mon_obs ()) ~page_size:8192 ~buffer_bytes:(512 * 1024) ~read_ahead ~scan_resistant
          qb_series corpus
      in
      let store = built.Harness.store in
      let docs = built.Harness.docs in
      let pool = Tree_store.buffer_pool store in
      let io = Tree_store.io_stats store in
      Tree_store.clear_buffers store;
      ignore (Queries.q3 store ~docs);
      let before = Io_stats.copy io in
      ignore (Queries.full_traversal store ~docs);
      let trav = Io_stats.diff (Io_stats.copy io) before in
      Natix_store.Buffer_pool.reset_stats pool;
      let before = Io_stats.copy io in
      ignore (Queries.q3 store ~docs);
      let q3 = Io_stats.diff (Io_stats.copy io) before in
      let ratio = Natix_store.Buffer_pool.hit_ratio pool in
      Printf.printf "%-24s %9d %9d %9.0f | %9.0f %13.3f\n" name trav.Io_stats.reads
        trav.Io_stats.read_ahead_pages trav.Io_stats.sim_ms q3.Io_stats.sim_ms ratio;
      (name, trav, q3, ratio))
    [ ("plain LRU", 0, false); ("segmented LRU + RA 8", 8, true) ]

(* Write bench (--write-bench): concurrent transactional writers.  Each
   document commits as one ARIES transaction through the group-commit
   daemon ([Par.load_files_txn]); jobs ∈ {1, 2, 4} worker domains share
   one file-backed store per run.  The workload is commit-latency bound
   by design: 16 small documents (one act each) against a 100 ms
   batching window, so at jobs=1 every commit pays its own window
   serially while at jobs>1 concurrent committers ride one leader's
   flush and the window overlaps other workers' mutation phases — the
   scaling measures the narrowed structure lock, not the XML parser.
   The domain schedule makes every I/O counter racy, so the JSON section
   exports only the document count and the wall-derived keys, which
   bench-diff skips; the table additionally shows how many daemon
   flushes the commits batched into. *)
let run_write_bench () =
  Printf.printf "\nWrite bench - concurrent transactional writers (8K pages, group commit)\n";
  Printf.printf "%-8s %8s %10s %12s %10s %12s\n" "jobs" "docs" "commits" "gc-flushes" "wall-s"
    "commits/s";
  let page_size = 8192 in
  (* ≥8 documents so mutation phases on distinct documents overlap and
     every worker domain stays busy; one-act plays keep the per-document
     mutation phase well under the batching window. *)
  let corpus =
    Natix_workload.Shakespeare.(
      generate
        {
          default_params with
          plays = 16;
          acts_per_play = 1;
          scenes_per_act = (1, 2);
          speeches_per_scene = (8, 14);
        })
  in
  let files =
    List.mapi
      (fun i play -> (Printf.sprintf "play-%d" i, Natix_xml.Xml_print.to_string play))
      corpus
  in
  let run jobs =
    let path = Filename.temp_file "natix_bench" ".db" in
    let config =
      { (Config.default ()) with Config.page_size; commit_delay = 100. }
    in
    let disk = Natix_store.Disk.on_file ~page_size path in
    let store = Tree_store.open_store ~config disk in
    let dm = Document_manager.create ~index:Document_manager.Off store in
    let t0 = Unix.gettimeofday () in
    let outcome = Natix_par.Par.load_files_txn ~jobs dm files in
    let wall = Unix.gettimeofday () -. t0 in
    List.iter2
      (fun (name, _) -> function
        | Ok () -> ()
        | Error e -> failwith (Printf.sprintf "write bench %s: %s" name (Error.to_string e)))
      files outcome.Natix_par.Par.results;
    let gc = Option.get (Tree_store.group_commit store) in
    let flushes = Natix_store.Group_commit.flushes gc in
    let committed = Natix_store.Group_commit.committed gc in
    if committed <> List.length files then
      failwith
        (Printf.sprintf "write bench: %d of %d commits acked" committed (List.length files));
    Tree_store.close ~commit:false store;
    Sys.remove path;
    let wal = Natix_store.Recovery.wal_path path in
    if Sys.file_exists wal then Sys.remove wal;
    let rate = if wall > 0. then float_of_int committed /. wall else 0. in
    Printf.printf "%-8d %8d %10d %12d %10.3f %12.1f\n" jobs (List.length files) committed
      flushes wall rate;
    (jobs, wall, rate)
  in
  let runs = List.map run [ 1; 2; 4 ] in
  J.Obj
    (("docs", J.Int (List.length files))
    :: List.concat_map
         (fun (jobs, w, r) ->
           [
             (Printf.sprintf "jobs%d_wall_s" jobs, J.Float w);
             (Printf.sprintf "jobs%d_commits_per_s" jobs, J.Float r);
           ])
         runs)

(* Parallel ablation (--jobs N): the same query batch at jobs=1 and
   jobs=N over one shared store.  reads/writes must match exactly — every
   distinct page is read once into the shared pool regardless of the
   schedule — while wall clock and the per-stream simulated figures may
   differ; the JSON section therefore exports only the deterministic
   counters (and [*_wall_s] keys, which bench-diff skips).  The section
   is additive: without --jobs the report is byte-identical to before. *)
let run_parallel_bench ~jobs corpus =
  Printf.printf "\nParallel query bench - jobs=1 vs jobs=%d (8K pages, 1:n append)\n" jobs;
  Printf.printf "%-8s %10s %10s %10s %12s %10s\n" "jobs" "tasks" "hits" "reads" "writes" "wall-s";
  let built = Harness.build ?obs:(mon_obs ()) ~page_size:8192 qb_series corpus in
  let store = built.Harness.store in
  let docs = built.Harness.docs in
  let paths =
    [ "//ACT[3]/SCENE[2]//SPEAKER"; "/ACT/SCENE/SPEECH[1]"; "/ACT[1]/SCENE[1]/SPEECH[1]" ]
  in
  let tasks = List.concat_map (fun d -> List.map (fun p -> (d, p)) paths) docs in
  let run jobs =
    Tree_store.clear_buffers store;
    Natix_store.Buffer_pool.reset_stats (Tree_store.buffer_pool store);
    let io = Tree_store.io_stats store in
    let before = Io_stats.copy io in
    let t0 = Unix.gettimeofday () in
    let outcome = Natix_par.Par.run_queries ~jobs store tasks in
    let wall = Unix.gettimeofday () -. t0 in
    (outcome, Io_stats.diff (Io_stats.copy io) before, wall)
  in
  let o1, d1, w1 = run 1 in
  let on, dn, wn = run jobs in
  if o1.Natix_par.Par.results <> on.Natix_par.Par.results then
    failwith "parallel bench: jobs=1 and parallel results differ";
  if d1.Io_stats.reads <> dn.Io_stats.reads || d1.Io_stats.writes <> dn.Io_stats.writes then
    failwith "parallel bench: jobs=1 and parallel I/O totals differ";
  let hits o =
    List.fold_left
      (fun acc -> function Ok l -> acc + List.length l | Error _ -> acc)
      0 o.Natix_par.Par.results
  in
  List.iter
    (fun (jobs, o, d, w) ->
      Printf.printf "%-8d %10d %10d %10d %12d %10.3f\n" jobs (List.length tasks) (hits o)
        d.Io_stats.reads d.Io_stats.writes w)
    [ (1, o1, d1, w1); (jobs, on, dn, wn) ];
  J.Obj
    [
      ("jobs", J.Int jobs);
      ("tasks", J.Int (List.length tasks));
      ("hits", J.Int (hits o1));
      ("io_jobs1", io_json d1);
      ("reads_jobs_n", J.Int dn.Io_stats.reads);
      ("writes_jobs_n", J.Int dn.Io_stats.writes);
      ("seq_wall_s", J.Float w1);
      ("par_wall_s", J.Float wn);
    ]

(* Serve bench: simulated open-loop traffic through the whole serve
   stack — Api codec, CRC framing, admission, dispatch — via the
   in-process loopback client.  The request mix is measured once on an
   inline (jobs = 0) server against the simulated I/O clock, then swept
   through the open-loop queueing model at multiples of the saturation
   rate.  Nothing touches a wall clock, so every figure (including the
   latency quantiles) is byte-identical across runs and machines and the
   section is gated by bench-diff. *)
let serve_export = ref ""

(* --trace: end-to-end request tracing on the serve bench's server.  The
   tracer only reads the simulated clock and the request's private I/O
   stream, so every figure in the report is byte-identical with it on —
   CI enforces that by diffing a --trace run against the baseline. *)
let serve_trace = ref false

let run_serve_bench corpus =
  let module T = Natix_server.Traffic in
  Printf.printf
    "\nServe bench - open-loop arrival sweep through the binary-protocol serve path (inline \
     server, simulated clock)\n";
  let sess = Natix.Session.open_memory () in
  let store = Natix.Session.store sess in
  let docs =
    List.mapi (fun i p -> (Printf.sprintf "play-%d" i, Natix_xml.Xml_print.to_string p)) corpus
  in
  List.iter
    (fun (doc, xml) ->
      match Natix.Session.exec sess (Natix.Api.Load { doc; xml; order = Loader.Preorder }) with
      | Natix.Api.Loaded _ -> ()
      | r -> failwith (Format.asprintf "serve bench load: %a" Natix.Api.pp_response r))
    docs;
  let registry = Natix_server.Registry.create () in
  Natix_server.Registry.mount registry "bench" sess;
  let server =
    Natix_server.Server.create
      ~config:
        {
          Natix_server.Server.default_config with
          Natix_server.Server.jobs = 0;
          trace = (if !serve_trace then Some Natix_server.Server.default_trace else None);
        }
      registry
  in
  let doc_names = List.map fst docs in
  let paths =
    [ "//ACT[3]/SCENE[2]//SPEAKER"; "/ACT/SCENE/SPEECH[1]"; "/ACT[1]/SCENE[1]/SPEECH[1]" ]
  in
  let reqs =
    Natix.Api.Ping
    :: Natix.Api.Scan { element = "SCNDESCR"; texts = false }
    :: Natix.Api.Stat { doc = None }
    :: List.concat_map
         (fun texts ->
           List.concat_map
             (fun path ->
               List.map (fun doc -> Natix.Api.Query { doc; path; texts }) doc_names)
             paths)
         [ false; true ]
  in
  (* Each request is measured against cold buffers: the service-time
     profile models steady-state traffic over a working set larger than
     the pool, not the second hit of a warm benchmark loop. *)
  let measured =
    List.concat_map
      (fun req ->
        Tree_store.clear_buffers store;
        T.measure server ~tenant:"bench" [ req ])
      reqs
  in
  List.iter
    (fun (resp, _) ->
      match resp with
      | Natix.Api.Err e -> failwith ("serve bench: " ^ Error.to_string e)
      | Natix.Api.Overloaded { reason } -> failwith ("serve bench: overloaded: " ^ reason)
      | _ -> ())
    measured;
  let service = Array.of_list (List.map snd measured) in
  let capacity = 4 and queue_depth = 8 in
  let sat = T.saturation ~capacity service in
  (* A fully cached mix saturates at infinity; fall back to a fixed base
     so the sweep (and its JSON) stays finite. *)
  let base = if Float.is_finite sat && sat > 0. then sat else 1000. in
  Printf.printf "%d request(s); capacity %d, queue depth %d, saturation %.1f req/s\n"
    (Array.length service) capacity queue_depth base;
  Printf.printf "%-9s %10s %8s %10s %6s %10s %9s %9s %9s\n" "multiple" "rate-rps" "offered"
    "completed" "shed" "max-queue" "p50-ms" "p95-ms" "p99-ms";
  let points =
    List.map
      (fun m ->
        let p = T.simulate ~capacity ~queue_depth ~rate:(base *. m) service in
        if p.T.completed + p.T.shed <> p.T.offered then
          failwith "serve bench: offered <> completed + shed";
        if p.T.max_queue > queue_depth then failwith "serve bench: queue bound exceeded";
        Printf.printf "%-9.2f %10.1f %8d %10d %6d %10d %9.2f %9.2f %9.2f\n" m p.T.rate
          p.T.offered p.T.completed p.T.shed p.T.max_queue p.T.p50_ms p.T.p95_ms p.T.p99_ms;
        (m, p))
      [ 0.5; 1.0; 2.0; 4.0 ]
  in
  (if !serve_export <> "" then
     match Natix.Session.mon sess with
     | None -> ()
     | Some mon ->
       let at_ms = (Io_stats.copy (Tree_store.io_stats store)).Io_stats.sim_ms in
       let path = Printf.sprintf "%s-bench.prom" !serve_export in
       let oc = open_out path in
       output_string oc (Natix_mon.Mon.export_prometheus mon ~at_ms);
       close_out oc;
       Printf.printf "wrote %s\n" path);
  Natix_server.Server.shutdown server;
  Natix.Session.close ~commit:false sess;
  J.Obj
    [
      ("requests", J.Int (Array.length service));
      ("capacity", J.Int capacity);
      ("queue_depth", J.Int queue_depth);
      ("saturation_rps", J.Float base);
      ( "sweep",
        J.List
          (List.map
             (fun (m, p) ->
               J.Obj
                 [
                   ("multiple", J.Float m);
                   ("rate_rps", J.Float p.T.rate);
                   ("offered", J.Int p.T.offered);
                   ("completed", J.Int p.T.completed);
                   ("shed", J.Int p.T.shed);
                   ("max_queue", J.Int p.T.max_queue);
                   ("p50_ms", J.Float p.T.p50_ms);
                   ("p95_ms", J.Float p.T.p95_ms);
                   ("p99_ms", J.Float p.T.p99_ms);
                 ])
             points) );
    ]

let run_query_bench corpus =
  let pvn = qb_planned_vs_naive corpus in
  let seed = qb_index_seed corpus in
  let scan = qb_scan_pool corpus in
  J.Obj
    [
      ( "planned_vs_naive",
        J.List
          (List.map
             (fun (name, path, hits, p, n) ->
               J.Obj
                 [
                   ("query", J.String name);
                   ("path", J.String path);
                   ("hits", J.Int hits);
                   ("planned_io", io_json p);
                   ("naive_io", io_json n);
                 ])
             pvn) );
      ( "index_seed",
        J.List
          (List.map
             (fun (path, access, hits, p, n) ->
               J.Obj
                 [
                   ("path", J.String path);
                   ("access", J.String access);
                   ("hits", J.Int hits);
                   ("planned_io", io_json p);
                   ("naive_io", io_json n);
                 ])
             seed) );
      ( "scan_pool",
        J.List
          (List.map
             (fun (name, trav, q3, ratio) ->
               J.Obj
                 [
                   ("pool", J.String name);
                   ("traversal_io", io_json trav);
                   ("q3_io", io_json q3);
                   ("q3_hit_ratio", J.Float ratio);
                 ])
             scan) );
    ]

let cell_json c =
  J.Obj
    [
      ("page_size", J.Int c.page_size);
      ("series", J.String (Harness.series_name c.series));
      ("build_io", io_json c.built.Harness.build_io);
      ("build_wall_s", J.Float c.built.Harness.build_wall_s);
      ("disk_bytes", J.Int c.built.Harness.disk_bytes);
      ("splits", J.Int c.built.Harness.splits);
      ("nodes", J.Int c.built.Harness.nodes);
      ("traversal_io", io_json c.traversal);
      ("q1_io", io_json c.q1);
      ("q2_io", io_json c.q2);
      ("q3_io", io_json c.q3);
    ]

(* One small instrumented build so the export also carries engine metrics
   (split-fill and record-size histograms, buffer hit ratio, event
   counts). *)
let instrumented_metrics_json corpus =
  let obs = Natix_obs.Obs.create () in
  let built =
    Harness.build ~page_size:8192 ~obs
      { Harness.matrix = Harness.Native; order = Loader.Preorder }
      corpus
  in
  let store = built.Harness.store in
  Tree_store.clear_buffers store;
  Natix_store.Buffer_pool.reset_stats (Tree_store.buffer_pool store);
  ignore (Queries.full_traversal store ~docs:built.Harness.docs);
  J.Obj
    [
      ("page_size", J.Int 8192);
      ("series", J.String "1:n append");
      ( "traversal_hit_ratio",
        J.Float (Natix_store.Buffer_pool.hit_ratio (Tree_store.buffer_pool store)) );
      ("metrics", Natix_obs.Metrics.to_json (Natix_obs.Obs.metrics obs));
    ]

let corpus_json ~scale ~plays ~nodes ~bytes =
  J.Obj
    [
      ("scale", J.Float scale); ("plays", J.Int plays); ("nodes", J.Int nodes);
      ("bytes", J.Int bytes);
    ]

let write_json_doc path doc =
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let write_json_report path ~scale ~plays ~nodes ~bytes ?query ?serve ?parallel ?write rows small =
  let doc =
    J.Obj
      ([
         ("corpus", corpus_json ~scale ~plays ~nodes ~bytes);
         ("io_model", J.String "IBM DCAS-34330W (simulated ms)");
         ( "cells",
           J.List (List.concat_map (fun (_page, cells) -> List.map cell_json cells) rows) );
         ("instrumented", instrumented_metrics_json small);
       ]
      @ (match query with None -> [] | Some q -> [ ("query_bench", q) ])
      @ (match serve with None -> [] | Some s -> [ ("serve_bench", s) ])
      @ (match parallel with None -> [] | Some p -> [ ("parallel", p) ])
      @ match write with None -> [] | Some w -> [ ("write_bench", w) ])
  in
  write_json_doc path doc

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per figure (wall clock)    *)

let bechamel_tests () =
  let corpus = Shakespeare.generate (Shakespeare.scaled 0.03) in
  let page_size = 8192 in
  let built =
    Harness.build ~page_size { Harness.matrix = Native; order = Loader.Preorder } corpus
  in
  let store = built.Harness.store and docs = built.Harness.docs in
  let open Bechamel in
  [
    Test.make ~name:"fig09_insertion"
      (Staged.stage (fun () ->
           ignore
             (Harness.build ~page_size
                { Harness.matrix = Native; order = Loader.Preorder }
                corpus)));
    Test.make ~name:"fig10_traversal"
      (Staged.stage (fun () -> ignore (Queries.full_traversal store ~docs)));
    Test.make ~name:"fig11_query1" (Staged.stage (fun () -> ignore (Queries.q1 store ~docs)));
    Test.make ~name:"fig12_query2" (Staged.stage (fun () -> ignore (Queries.q2 store ~docs)));
    Test.make ~name:"fig13_query3" (Staged.stage (fun () -> ignore (Queries.q3 store ~docs)));
    Test.make ~name:"fig14_space" (Staged.stage (fun () -> ignore (Stats.disk_bytes store)));
  ]

let run_bechamel () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let tests = Test.make_grouped ~name:"figures" ~fmt:"%s/%s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  Printf.printf "\nBechamel wall-clock micro-benchmarks (reduced corpus, 8K pages)\n";
  Printf.printf "%-28s %16s\n" "benchmark" "ns/run";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "%-28s %16.0f\n" name est
         | Some _ | None -> Printf.printf "%-28s %16s\n" name "n/a")

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let () =
  let scale = ref 1.0 in
  let pages = ref default_page_sizes in
  let figures = ref [] in
  let run_ablations = ref true in
  let query_only = ref false in
  let with_bechamel = ref false in
  let check = ref false in
  let json_path = ref "" in
  let jobs = ref 1 in
  let write_bench = ref false in
  let args =
    [
      ("--scale", Arg.Set_float scale, "FACTOR corpus scale (default 1.0 = 37 plays)");
      ( "--pages",
        Arg.String (fun s -> pages := List.map int_of_string (String.split_on_char ',' s)),
        "LIST comma-separated page sizes" );
      ( "--figure",
        Arg.Int (fun n -> figures := n :: !figures),
        "N print only figure N (9-14; repeatable)" );
      ("--no-ablations", Arg.Clear run_ablations, " skip the ablation benches");
      ( "--query-bench",
        Arg.Set query_only,
        " run only the query-engine bench (planned vs naive, index seeding, scan pool)" );
      ("--bechamel", Arg.Set with_bechamel, " also run Bechamel wall-clock micro-benchmarks");
      ("--check", Arg.Set check, " run integrity checks after each build");
      ( "--json",
        Arg.Unit (fun () -> json_path := "BENCH_natix.json"),
        " write a machine-readable report to BENCH_natix.json" );
      ("--json-file", Arg.String (fun p -> json_path := p), "FILE write the JSON report to FILE");
      ( "--mon",
        Arg.Set mon_enabled,
        " attach the always-on monitor to every build/measurement; all simulated figures must \
         stay byte-identical (the telemetry-overhead experiment)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N also run the parallel query bench at N worker domains (adds a \"parallel\" JSON \
         section; existing figures are untouched)" );
      ( "--write-bench",
        Arg.Set write_bench,
        " also run the concurrent transactional-writer bench at jobs 1/2/4 (adds a \
         \"write_bench\" JSON section of wall-clock keys; existing figures are untouched)" );
      ( "--serve-export",
        Arg.Set_string serve_export,
        "PREFIX after the serve bench, write the tenant's Prometheus metrics to \
         PREFIX-<tenant>.prom" );
      ( "--trace",
        Arg.Set serve_trace,
        " trace every serve-bench request end to end; all simulated figures must stay \
         byte-identical (the tracing-overhead experiment)" );
    ]
  in
  Arg.parse args (fun _ -> ()) "natix benchmark harness";
  let figures = if !figures = [] then [ 9; 10; 11; 12; 13; 14 ] else List.rev !figures in
  let corpus = Shakespeare.generate (Shakespeare.scaled !scale) in
  let nodes, bytes = Shakespeare.corpus_measure corpus in
  Printf.printf
    "NATIX evaluation harness - corpus: %d plays, %d nodes, %.1f MB; buffer 2 MB;\n\
     split target 1/2, tolerance 1/10 page; IBM DCAS-34330W I/O model (simulated ms).\n"
    (List.length corpus) nodes
    (float_of_int bytes /. 1e6);
  let parallel_section () =
    if !jobs > 1 then
      Some (run_parallel_bench ~jobs:!jobs (Shakespeare.generate (Shakespeare.scaled (Float.min !scale 0.25))))
    else None
  in
  let write_section () =
    if !write_bench then
      Some (run_write_bench ())
    else None
  in
  let serve_corpus () = Shakespeare.generate (Shakespeare.scaled (Float.min !scale 0.1)) in
  if !query_only then begin
    let query = run_query_bench corpus in
    let serve = run_serve_bench (serve_corpus ()) in
    let parallel = parallel_section () in
    let write = write_section () in
    if !json_path <> "" then
      write_json_doc !json_path
        (J.Obj
           ([
              ("corpus", corpus_json ~scale:!scale ~plays:(List.length corpus) ~nodes ~bytes);
              ("io_model", J.String "IBM DCAS-34330W (simulated ms)");
              ("query_bench", query);
              ("serve_bench", serve);
            ]
           @ (match parallel with None -> [] | Some p -> [ ("parallel", p) ])
           @ match write with None -> [] | Some w -> [ ("write_bench", w) ]));
    exit 0
  end;
  let rows =
    List.map
      (fun page_size ->
        let cells =
          List.map
            (fun series ->
              let t0 = Unix.gettimeofday () in
              let cell = build_cell ~check:!check page_size series corpus in
              Printf.eprintf "[built %s @%d in %.1fs]\n%!" (Harness.series_name series)
                page_size
                (Unix.gettimeofday () -. t0);
              cell)
            series_order
        in
        (page_size, cells))
      !pages
  in
  List.iter (print_figure rows) figures;
  print_aux rows;
  let query =
    if !run_ablations then
      Some (run_query_bench (Shakespeare.generate (Shakespeare.scaled (Float.min !scale 0.25))))
    else None
  in
  let serve = if !run_ablations then Some (run_serve_bench (serve_corpus ())) else None in
  let parallel = parallel_section () in
  let write = write_section () in
  if !json_path <> "" then begin
    let small = Shakespeare.generate (Shakespeare.scaled (Float.min !scale 0.1)) in
    write_json_report !json_path ~scale:!scale ~plays:(List.length corpus) ~nodes ~bytes ?query
      ?serve ?parallel ?write rows small
  end;
  if !run_ablations then begin
    let small = Shakespeare.generate (Shakespeare.scaled (Float.min !scale 0.25)) in
    ablation_split_params small;
    ablation_buffer small;
    ablation_hybrid small;
    ablation_flat small;
    ablation_merge small;
    ablation_scan small;
    ablation_wal small
  end;
  if !with_bechamel then run_bechamel ()
