(* Flat streams vs the native repository (paper §1 and §5): store the same
   collection as serialized byte streams in a BLOB manager and natively in
   NATIX, then compare whole-document reads (where flat wins) against
   structural access and scattered updates (where native wins).

   Run with:  dune exec examples/flat_vs_native.exe *)

open Natix_core
open Natix_workload
module Io_stats = Natix_store.Io_stats

let page_size = 8192

let () =
  let corpus = Shakespeare.generate (Shakespeare.scaled 0.1) in
  let nodes, bytes = Shakespeare.corpus_measure corpus in
  Printf.printf "corpus: %d plays, %d nodes, %.2f MB\n\n" (List.length corpus) nodes
    (float_of_int bytes /. 1e6);

  (* ---- flat streams ------------------------------------------------ *)
  let disk = Natix_store.Disk.in_memory ~page_size () in
  let pool = Natix_store.Buffer_pool.create ~disk ~bytes:(2 * 1024 * 1024) () in
  let rm = Natix_store.Record_manager.create (Natix_store.Segment.create pool) in
  let bs = Natix_flat.Blob_store.create rm in
  let stats = Natix_store.Disk.stats disk in
  let measure f =
    Natix_store.Buffer_pool.clear pool;
    let before = Io_stats.copy stats in
    let r = f () in
    Natix_store.Buffer_pool.flush pool;
    (r, Io_stats.diff (Io_stats.copy stats) before)
  in
  let flat_docs, load_io =
    measure (fun () ->
        List.mapi
          (fun i p -> Natix_flat.Flat_document.store bs ~name:(Printf.sprintf "play-%d" i) p)
          corpus)
  in
  Printf.printf "flat   load (serialize+write):      %8.0f sim-ms\n" load_io.Io_stats.sim_ms;
  let _, whole_io =
    measure (fun () -> List.map (fun d -> Natix_flat.Flat_document.load bs d) flat_docs)
  in
  Printf.printf "flat   read whole collection:       %8.0f sim-ms (sequential strength)\n"
    whole_io.Io_stats.sim_ms;
  (* Structural access = parse everything even for one speech per play. *)
  let _, q3_io =
    measure (fun () ->
        List.map
          (fun d ->
            let xml = Natix_flat.Flat_document.load bs d in
            Natix_xml.Xml_tree.child_named xml "ACT")
          flat_docs)
  in
  Printf.printf "flat   opening speech per play:     %8.0f sim-ms (must parse everything)\n"
    q3_io.Io_stats.sim_ms;
  let _, splice_io =
    measure (fun () ->
        List.iter
          (fun d ->
            let offsets = Natix_flat.Flat_document.text_offsets bs d ~limit:25 in
            List.iter
              (fun at -> Natix_flat.Flat_document.splice_text bs d ~at " updated")
              (List.rev (List.sort Int.compare offsets)))
          flat_docs)
  in
  Printf.printf "flat   scattered text updates:      %8.0f sim-ms\n\n" splice_io.Io_stats.sim_ms;

  (* ---- native ------------------------------------------------------ *)
  let built =
    Harness.build ~page_size { Harness.matrix = Harness.Native; order = Loader.Preorder } corpus
  in
  let store = built.Harness.store and docs = built.Harness.docs in
  Printf.printf "native load (tree growth):          %8.0f sim-ms\n"
    built.Harness.build_io.Io_stats.sim_ms;
  let _, trav = Harness.measure built (fun () -> Queries.full_traversal store ~docs) in
  Printf.printf "native full traversal:              %8.0f sim-ms\n" trav.Io_stats.sim_ms;
  let _, q3 = Harness.measure built (fun () -> Queries.q3 store ~docs) in
  Printf.printf "native opening speech per play:     %8.0f sim-ms (navigates a single path)\n"
    q3.Io_stats.sim_ms;
  let _, upd =
    Harness.measure built (fun () ->
        List.iter
          (fun d ->
            List.iteri
              (fun i scene ->
                if i < 25 then
                  ignore
                    (Tree_store.insert_node store
                       (Tree_store.First_under (Cursor.node scene))
                       (Tree_store.Text " updated")))
              (Path.query store ~doc:d "//SCENE"))
          docs;
        Tree_store.sync store)
  in
  Printf.printf "native scattered text updates:      %8.0f sim-ms\n" upd.Io_stats.sim_ms;
  print_endline "\nFlat streams win when whole documents stream in and out; the native";
  print_endline "repository wins as soon as structure is accessed or updated in place."
