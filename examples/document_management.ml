(* The document manager (paper Fig. 1): schema validation, index-backed
   element access and fragment integration on top of the tree store.

   Run with:  dune exec examples/document_management.exe *)

open Natix_core
module Dtd = Natix_xml.Dtd
module Xml_parser = Natix_xml.Xml_parser

let () =
  let dm = Document_manager.create (Tree_store.in_memory ()) in

  (* A DTD for a fragment of the plays' schema. *)
  let dtd = Dtd.create ~name:"play" in
  Dtd.declare dtd "PLAY" (Dtd.Children_of [ "TITLE"; "ACT" ]);
  Dtd.declare dtd "ACT" (Dtd.Children_of [ "TITLE"; "SCENE" ]);
  Dtd.declare dtd "SCENE" (Dtd.Children_of [ "TITLE"; "SPEECH" ]);
  Dtd.declare dtd "SPEECH" (Dtd.Children_of [ "SPEAKER"; "LINE" ]);
  List.iter (fun e -> Dtd.declare dtd e Dtd.Pcdata_only) [ "TITLE"; "SPEAKER"; "LINE" ];

  (* Storing a valid document registers the DTD with it. *)
  let doc =
    "<PLAY><TITLE>Othello</TITLE><ACT><TITLE>I</TITLE><SCENE><TITLE>1</TITLE>"
    ^ "<SPEECH><SPEAKER>OTHELLO</SPEAKER><LINE>Let me see your eyes;</LINE>"
    ^ "<LINE>Look in my face.</LINE></SPEECH></SCENE></ACT></PLAY>"
  in
  (match Document_manager.store_document dm ~name:"othello" ~dtd (Xml_parser.parse doc) with
  | Ok _ -> print_endline "stored 'othello' (valid against its DTD)"
  | Error e -> failwith (Error.to_string e));

  (* Invalid documents are rejected before anything is stored. *)
  (match
     Document_manager.store_document dm ~name:"broken" ~dtd
       (Xml_parser.parse "<PLAY><EPILOGUE/></PLAY>")
   with
  | Error e -> Printf.printf "rejected 'broken': %s\n" (Error.to_string e)
  | Ok _ -> failwith "should have been rejected");

  (* Fragment integration validates against the DTD too. *)
  let store = Document_manager.store dm in
  let scene = List.hd (Path.query store ~doc:"othello" "//SCENE[1]") in
  (match
     Document_manager.insert_fragment dm ~doc:"othello"
       (Tree_store.First_under (Cursor.node scene))
       (Xml_parser.parse "<SPEECH><SPEAKER>IAGO</SPEAKER><LINE>My noble lord--</LINE></SPEECH>")
   with
  | Ok _ -> print_endline "grafted a SPEECH fragment into scene 1"
  | Error e -> failwith (Error.to_string e));
  (match
     Document_manager.insert_fragment dm ~doc:"othello"
       (Tree_store.First_under (Cursor.node scene))
       (Xml_parser.parse "<PERSONA>stray</PERSONA>")
   with
  | Error e -> Printf.printf "rejected a stray fragment: %s\n" (Error.to_string e)
  | Ok _ -> failwith "should have been rejected");

  (* The element index answers typed scans without traversing. *)
  Printf.printf "SPEECH nodes (via index): %d\n" (Document_manager.count_elements dm "SPEECH");
  List.iter
    (fun n -> Printf.printf "  speaker: %s\n" (Cursor.text_content (Cursor.of_node store n)))
    (Document_manager.elements_named dm "SPEAKER");

  (* The document still validates after the edits. *)
  match Document_manager.validate dm "othello" with
  | Ok () -> print_endline "document re-validates after updates"
  | Error e -> failwith (Error.to_string e)
