(* The paper's workload end to end: generate a Shakespeare-like corpus,
   load it (choose the insertion order), and run the four measured
   operations of §4.3 with I/O accounting.

   Run with:  dune exec examples/shakespeare_queries.exe -- [--scale 0.2]
              [--order bfs] [--page-size 8192] *)

open Natix_core
open Natix_workload
module Io_stats = Natix_store.Io_stats

let () =
  let scale = ref 0.2 in
  let order = ref Loader.Preorder in
  let page_size = ref 8192 in
  Arg.parse
    [
      ("--scale", Arg.Set_float scale, "FACTOR corpus scale (1.0 = the paper's 37 plays)");
      ( "--order",
        Arg.String
          (function
          | "bfs" | "incremental" -> order := Loader.Bfs_binary
          | "preorder" | "append" -> order := Loader.Preorder
          | other -> raise (Arg.Bad ("unknown order " ^ other))),
        "ORDER insertion order: preorder|bfs" );
      ("--page-size", Arg.Set_int page_size, "BYTES page size (512-32768)");
    ]
    (fun _ -> ())
    "shakespeare_queries";
  let corpus = Shakespeare.generate (Shakespeare.scaled !scale) in
  let nodes, bytes = Shakespeare.corpus_measure corpus in
  Printf.printf "corpus: %d plays, %d logical nodes, %.2f MB of XML\n" (List.length corpus)
    nodes
    (float_of_int bytes /. 1e6);

  let series = { Harness.matrix = Harness.Native; order = !order } in
  let built = Harness.build ~page_size:!page_size series corpus in
  Printf.printf "loaded (%s) in %.1fs wall; %d splits; %d bytes on disk; simulated %.0f ms\n"
    (Harness.series_name series) built.Harness.build_wall_s built.Harness.splits
    built.Harness.disk_bytes built.Harness.build_io.Io_stats.sim_ms;

  let store = built.Harness.store and docs = built.Harness.docs in
  let run name f =
    let result, io = Harness.measure built f in
    Printf.printf "%-28s %10.0f sim-ms %8d reads  -> %s\n" name io.Io_stats.sim_ms
      io.Io_stats.reads result
  in
  run "full pre-order traversal" (fun () ->
      Printf.sprintf "%d nodes" (Queries.full_traversal store ~docs));
  run "Q1 speakers act3/scene2" (fun () ->
      let speakers = Queries.q1 store ~docs in
      Printf.sprintf "%d speakers, first: %s" (List.length speakers)
        (match speakers with s :: _ -> s | [] -> "-"));
  run "Q2 first speech per scene" (fun () ->
      Printf.sprintf "%d speeches" (List.length (Queries.q2 store ~docs)));
  run "Q3 opening speech per play" (fun () ->
      Printf.sprintf "%d speeches" (List.length (Queries.q3 store ~docs)));

  (* Show one reconstructed speech. *)
  match Queries.q3 store ~docs with
  | first :: _ -> Printf.printf "\nopening speech of play-0:\n%s\n" first
  | [] -> ()
