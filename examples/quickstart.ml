(* Quickstart: store an XML document in NATIX, navigate it, query it, and
   reconstruct its text.

   Run with:  dune exec examples/quickstart.exe *)

open Natix_core

let document =
  {|<SPEECH kind="dialogue">
      <SPEAKER>OTHELLO</SPEAKER>
      <LINE>Let me see your eyes;</LINE>
      <LINE>Look in my face.</LINE>
    </SPEECH>|}

let () =
  (* 1. An in-memory store with default configuration (8K pages, 2 MB
     buffer, native 1:n Split Matrix).  Use [Tree_store.open_store] with
     [Disk.on_file] for a persistent one. *)
  let store = Tree_store.in_memory () in

  (* 2. Parse and load.  The loader drives the paper's tree growth
     procedure one node at a time. *)
  let xml = Natix_xml.Xml_parser.parse document in
  let _root = Loader.load store ~name:"othello" xml in
  Printf.printf "documents in store: %s\n" (String.concat ", " (Tree_store.list_documents store));

  (* 3. Navigate with a cursor: scaffolding (proxies, helper aggregates)
     is invisible; this is the logical tree of Figure 2. *)
  let root = Option.get (Cursor.of_document store "othello") in
  Printf.printf "root element: %s (kind attribute: %s)\n" (Cursor.name root)
    (Option.value ~default:"-" (Cursor.attribute root "kind"));
  Seq.iter
    (fun child ->
      if Cursor.is_element child then
        Printf.printf "  <%s> %s\n" (Cursor.name child) (Cursor.text_content child))
    (Cursor.children root);

  (* 4. Path queries. *)
  let lines = Path.query store ~doc:"othello" "/LINE" in
  Printf.printf "the speech has %d lines; second line: %S\n" (List.length lines)
    (Cursor.text_content (List.nth lines 1));

  (* 5. Update: add a line, then reconstruct the textual representation. *)
  let last_line = Cursor.node (List.nth lines 1) in
  let _ =
    Tree_store.insert_node store (Tree_store.After last_line)
      (Tree_store.Elem (Tree_store.label store "LINE"))
  in
  let added = List.nth (Path.query store ~doc:"othello" "/LINE") 2 in
  let _ =
    Tree_store.insert_node store
      (Tree_store.First_under (Cursor.node added))
      (Tree_store.Text "No, not that line.")
  in
  print_endline "reconstructed document:";
  print_string
    (Natix_xml.Xml_print.to_string_pretty
       (Option.get (Exporter.document_to_xml store "othello")));

  (* 6. Physical statistics: how the logical tree maps onto records. *)
  let s = Stats.document store "othello" in
  Format.printf "physical: %a@." Stats.pp_doc s;
  Format.printf "I/O so far: %a@." Natix_store.Io_stats.pp (Tree_store.io_stats store)
