(* The Split Matrix as a tuning instrument (paper §3.3 and §5): the same
   document collection stored under four matrices, showing how clustering
   decisions shape the physical tree and the cost of access patterns.

   Run with:  dune exec examples/split_matrix_tuning.exe *)

open Natix_core
open Natix_workload
module Io_stats = Natix_store.Io_stats

let page_size = 4096

let describe name store docs =
  let agg =
    List.fold_left
      (fun (records, scaffold, depth, bytes) doc ->
        let s = Stats.document store doc in
        ( records + s.Stats.records,
          scaffold + s.Stats.scaffold_nodes,
          max depth s.Stats.record_tree_depth,
          bytes + s.Stats.record_bytes ))
      (0, 0, 0, 0) docs
  in
  let records, scaffold, depth, bytes = agg in
  (* Cost of reading every LINE under the first scene (a navigation an
     application with SPEECH-level locality cares about). *)
  Tree_store.clear_buffers store;
  let io = Tree_store.io_stats store in
  let before = Io_stats.copy io in
  let lines =
    List.concat_map (fun d -> Path.query store ~doc:d "/ACT[1]/SCENE[1]//LINE") docs
  in
  List.iter (fun c -> ignore (Cursor.text_content c)) lines;
  let q = Io_stats.diff (Io_stats.copy io) before in
  Printf.printf "%-26s %8d %9d %6d %10d %10.0f %8d\n" name records scaffold depth bytes
    q.Io_stats.sim_ms q.Io_stats.reads

let load_with name default configure =
  let matrix = Split_matrix.create ~default () in
  let config = { (Config.default ()) with Config.page_size; matrix } in
  let store = Tree_store.in_memory ~config () in
  configure store matrix;
  let corpus = Shakespeare.generate (Shakespeare.scaled 0.05) in
  let docs = List.mapi (fun i p -> (Printf.sprintf "play-%d" i, p)) corpus in
  Loader.load_collection store docs ~order:Loader.Preorder;
  describe name store (List.map fst docs)

let () =
  Printf.printf "%-26s %8s %9s %6s %10s %10s %8s\n" "matrix" "records" "scaffold" "depth"
    "bytes" "scan-ms" "reads";
  (* 1. POET/Excelon/LORE emulation: every node its own record. *)
  load_with "all standalone (1:1)" Split_matrix.Standalone (fun _ _ -> ());
  (* 2. Native: the algorithm decides everything. *)
  load_with "all other (native 1:n)" Split_matrix.Other (fun _ _ -> ());
  (* 3. Keep speeches atomic: a SPEECH never separates from its lines --
     an application that always renders whole speeches. *)
  load_with "speeches clustered" Split_matrix.Other (fun store m ->
      List.iter
        (fun c ->
          Split_matrix.set m
            ~parent:(Tree_store.label store "SPEECH")
            ~child:(Tree_store.label store c) Split_matrix.Cluster)
        [ "SPEAKER"; "LINE" ]);
  (* 4. Collect every PERSONAE subtree in its own records, e.g. to give
     cast lists their own database area (paper §3.3). *)
  load_with "personae standalone" Split_matrix.Other (fun store m ->
      Split_matrix.set m
        ~parent:(Tree_store.label store "PLAY")
        ~child:(Tree_store.label store "PERSONAE")
        Split_matrix.Standalone);
  print_endline "\nNote how matrices trade records/scaffolding for access locality:";
  print_endline "the 1:1 matrix maximises records and scan cost; clustering SPEECH";
  print_endline "subtrees keeps whole speeches in one record, so scanning their lines";
  print_endline "costs the fewest page reads."
